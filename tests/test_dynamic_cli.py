"""CLI + campaign integration for the dynamic subsystem and the faults
factor: ``repro dynamic run|replay|report``, temporal campaigns
(streams factor, monitor algorithm), fault spec strings end to end."""

import json

import pytest

from repro.cli import main
from repro.congest.faults import (
    DropFaults,
    TargetedFaults,
    build_fault_model,
    parse_fault_spec,
)
from repro.errors import ConfigurationError
from repro.runner import CampaignSpec, CampaignStore, execute_row, run_campaign


class TestFaultSpecs:
    def test_parse_none(self):
        assert parse_fault_spec("none") == ("none", {})
        assert build_fault_model(None) is None
        assert build_fault_model("none") is None

    def test_parse_drop_forms(self):
        assert parse_fault_spec("drop:0.05") == ("drop", {"p": 0.05})
        assert parse_fault_spec("drop:p=0.25") == ("drop", {"p": 0.25})
        model = build_fault_model("drop:p=0.5", seed=1)
        assert isinstance(model, DropFaults) and model.p == 0.5

    def test_parse_targeted(self):
        name, params = parse_fault_spec("targeted:u=3,v=7")
        assert name == "targeted" and params == {"u": 3, "v": 7}
        model = build_fault_model("targeted:u=3,v=7,round=2")
        assert isinstance(model, TargetedFaults)
        assert not model.delivers(2, 3, 7)
        assert not model.delivers(2, 7, 3)
        assert model.delivers(1, 3, 7)

    @pytest.mark.parametrize("bad", [
        "", "zap", "none:x=1", "drop", "drop:p=nope", "drop:p=1.5",
        "targeted:u=1", "targeted:u=1,w=2", "targeted:u=a,v=2",
    ])
    def test_parse_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            parse_fault_spec(bad)

    def test_fast_engine_rejects_faults(self):
        pytest.importorskip("numpy")
        from repro.core.tester import CkFreenessTester
        from repro.graphs.generators import cycle_graph

        tester = CkFreenessTester(
            5, 0.1, engine="fast", faults=build_fault_model("drop:p=0.5")
        )
        with pytest.raises(ConfigurationError, match="reference"):
            tester.run(cycle_graph(5), seed=0)

    def test_targeted_fault_hides_the_witness(self):
        # Censoring one cycle link in every round starves detection on
        # the lone 5-cycle: soundness keeps it accept, completeness dies.
        from repro.core.algorithm1 import detect_cycle_through_edge
        from repro.graphs.generators import cycle_graph

        g = cycle_graph(5)
        clean = detect_cycle_through_edge(g, (0, 1), 5)
        assert clean.detected
        jammed = detect_cycle_through_edge(
            g, (0, 1), 5, faults=build_fault_model("targeted:u=2,v=3"),
        )
        assert not jammed.detected


class TestTemporalCampaigns:
    def spec(self, **overrides):
        base = dict(
            name="dyn-unit",
            generators=[{"family": "gnp", "params": {"n": 14, "p": 0.12}}],
            ks=[5],
            epsilons=[0.15],
            algorithms=["monitor", "tester"],
            streams=["uniform-churn:steps=8"],
            repetitions=1,
            seed=3,
        )
        base.update(overrides)
        return CampaignSpec(**base)

    def test_monitor_requires_streams(self):
        with pytest.raises(ConfigurationError, match="temporal"):
            self.spec(streams=[None]).validate()

    def test_invalid_stream_spec_fails_validation(self):
        with pytest.raises(ConfigurationError):
            self.spec(streams=["no-such-scenario"]).validate()

    def test_invalid_fault_spec_fails_validation(self):
        with pytest.raises(ConfigurationError):
            self.spec(faults=["zap:1"]).validate()

    def test_stream_axis_collapses_for_stream_blind_algorithms(self):
        spec = self.spec(algorithms=["monitor", "tester", "naive"],
                         streams=[None, "uniform-churn:steps=8"])
        rows = spec.expand()
        by_algo = {}
        for row in rows:
            by_algo.setdefault(row.algorithm, []).append(row.stream)
        assert by_algo["monitor"] == ["uniform-churn:steps=8"]
        assert sorted(by_algo["tester"], key=str) == \
            [None, "uniform-churn:steps=8"]
        assert by_algo["naive"] == [None]  # collapsed, deduped

    def test_faulted_rows_pin_reference_engine(self):
        spec = self.spec(algorithms=["tester"], streams=[None],
                         engines=["reference", "fast"],
                         faults=[None, "drop:p=0.3"])
        rows = spec.expand()
        faulted = [r for r in rows if r.faults is not None]
        assert faulted and all(r.engine == "reference" for r in faulted)
        clean = [r for r in rows if r.faults is None]
        assert {r.engine for r in clean} == {"reference", "fast"}

    def test_none_fault_spelling_normalises_to_reliable(self):
        # 'none' (the spelling parse_fault_spec accepts) must behave
        # exactly like None: same row identity, no engine pinning.
        explicit = self.spec(algorithms=["tester"], streams=[None],
                             engines=["fast"], faults=["none"]).expand()
        implicit = self.spec(algorithms=["tester"], streams=[None],
                             engines=["fast"], faults=[None]).expand()
        assert explicit.row_ids() == implicit.row_ids()
        assert all(r.engine == "fast" and r.faults is None
                   for r in explicit.rows)

    def test_temporal_row_with_stream_blind_algorithm_raises(self):
        from repro.runner.runtable import RunRow

        row = RunRow(run_id="x", campaign="c", generator="cycle",
                     params=(("n", 8),), k=5, eps=0.1, algorithm="gather",
                     repetition=0, seed=1, stream="uniform-churn:steps=4")
        with pytest.raises(ConfigurationError, match="temporal"):
            execute_row(row)

    def test_stream_and_fault_join_run_id_identity(self):
        plain = self.spec(algorithms=["tester"], streams=[None]).expand()
        churn = self.spec(algorithms=["tester"]).expand()
        faulted = self.spec(algorithms=["tester"], streams=[None],
                            faults=["drop:p=0.2"]).expand()
        ids = [t.rows[0].run_id for t in (plain, churn, faulted)]
        assert len(set(ids)) == 3

    def test_execute_monitor_row_outcome(self):
        row = next(r for r in self.spec().expand()
                   if r.algorithm == "monitor")
        record = execute_row(row)
        assert record["status"] == "ok"
        assert record["stream"] == "uniform-churn:steps=8"
        out = record["outcome"]
        assert out["strategy"] == "monitor" and out["steps"] == 8
        assert out["cache_hits"] + out["local_rechecks"] + \
            out["full_retests"] == 8

    def test_monitor_and_naive_rows_agree_on_trajectory(self):
        rows = {r.algorithm: r for r in self.spec().expand()}
        monitor = execute_row(rows["monitor"])["outcome"]
        naive = execute_row(rows["tester"])["outcome"]
        assert naive["strategy"] == "naive"
        for field in ("final_accepted", "reject_steps", "verdict_flips",
                      "final_hash", "final_n", "final_m"):
            assert monitor[field] == naive[field], field

    def test_faulted_stream_row_executes(self):
        row = self.spec(faults=["drop:p=0.1"]).expand().rows[0]
        assert row.faults == "drop:p=0.1"
        record = execute_row(row)
        assert record["status"] == "ok"
        assert record["faults"] == "drop:p=0.1"

    def test_temporal_campaign_runs_and_resumes(self, tmp_path):
        spec = self.spec()
        store = CampaignStore(tmp_path / "dyn.jsonl")
        report = run_campaign(spec.expand(), store)
        assert report.errors == 0 and report.executed == 2
        again = run_campaign(spec.expand(), store)
        assert again.executed == 0 and again.skipped == 2

    def test_spec_json_round_trip_keeps_new_factors(self):
        spec = self.spec(faults=[None, "drop:p=0.2"])
        twin = CampaignSpec.from_json(spec.to_json())
        assert list(twin.streams) == list(spec.streams)
        assert list(twin.faults) == list(spec.faults)
        assert twin.expand().row_ids() == spec.expand().row_ids()

    def test_legacy_spec_json_defaults_to_static_reliable(self):
        text = json.dumps({
            "name": "old", "generators": [{"family": "cycle",
                                           "params": {"n": 8}}],
        })
        spec = CampaignSpec.from_json(text)
        assert list(spec.streams) == [None]
        assert list(spec.faults) == [None]


class TestDynamicCli:
    def test_run_replay_report_round_trip(self, tmp_path, capsys):
        base = tmp_path / "base.edges"
        stream = tmp_path / "churn.stream"
        log = tmp_path / "dyn.jsonl"
        rc = main([
            "dynamic", "run", "--generator", "gnp", "--n", "16",
            "--p", "0.12", "--k", "5",
            "--stream", "uniform-churn:steps=8,p=0.6",
            "--base-out", str(base), "--stream-out", str(stream),
            "--log", str(log), "--seed", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "monitor:" in out and "steps=8" in out
        assert base.exists() and stream.exists() and log.exists()
        # Every step line plus the summary line is valid JSON.
        lines = [json.loads(line) for line in
                 log.read_text().splitlines() if line.strip()]
        assert len(lines) == 9 and "summary" in lines[-1]

        rc = main([
            "dynamic", "replay", "--base", str(base),
            "--stream-file", str(stream), "--k", "5", "--quiet",
        ])
        assert rc == 0
        replay_out = capsys.readouterr().out
        # Replay reproduces the identical final state fingerprint.
        final_line = [
            line for line in out.splitlines() if line.startswith("final:")
        ]
        assert final_line[0] in replay_out

        rc = main(["dynamic", "report", "--log", str(log)])
        assert rc == 0
        report_out = capsys.readouterr().out
        assert "8 steps" in report_out and "summary:" in report_out

    def test_report_missing_log_is_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="no dynamic log"):
            main(["dynamic", "report", "--log", str(tmp_path / "nope")])

    def test_run_with_faults_flag(self, capsys):
        rc = main([
            "dynamic", "run", "--generator", "cycle", "--n", "12",
            "--k", "5", "--stream", "growth:steps=6", "--quiet",
            "--faults", "drop:p=0.05",
        ])
        assert rc == 0
        assert "monitor:" in capsys.readouterr().out

    def test_test_command_accepts_faults(self, capsys):
        rc = main([
            "test", "--generator", "cycle", "--n", "5", "--k", "5",
            "--repetitions", "4", "--faults", "drop:p=1.0",
        ])
        # Total loss: nothing can be detected, so the tester accepts.
        assert rc == 0
        assert "accept" in capsys.readouterr().out

    def test_campaign_cli_streams_and_faults_flags(self, tmp_path, capsys):
        store = tmp_path / "t.jsonl"
        rc = main([
            "campaign", "run", "--generators", "gnp", "--ns", "12",
            "--ks", "5", "--algorithms", "monitor,tester",
            "--streams", "uniform-churn:steps=6", "--faults", "none",
            "--name", "cli-dyn", "--store", str(store), "--workers", "1",
        ])
        assert rc == 0
        rc = main(["campaign", "report", "--store", str(store),
                   "--group-by", "algorithm,stream"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "monitor" in out and "uniform-churn:steps=6" in out

"""Tests for the centralized ground-truth cycle queries."""

import pytest

from helpers import assert_is_cycle, random_graphs
from repro.errors import ConfigurationError
from repro.graphs import (
    Graph,
    complete_bipartite_graph,
    complete_graph,
    count_k_cycles,
    cycle_graph,
    cycles_through_edge,
    enumerate_k_cycles,
    find_cycle_through_edge,
    find_k_cycle,
    girth,
    grid_graph,
    has_cycle_through_edge,
    has_k_cycle,
    is_ck_free,
    path_graph,
    simple_paths,
)


class TestSimplePaths:
    def test_exact_length(self):
        g = path_graph(5)
        paths = list(simple_paths(g, 0, 4, 4))
        assert paths == [(0, 1, 2, 3, 4)]
        assert list(simple_paths(g, 0, 4, 3)) == []

    def test_zero_length(self):
        g = path_graph(2)
        assert list(simple_paths(g, 0, 0, 0)) == [(0,)]
        assert list(simple_paths(g, 0, 1, 0)) == []

    def test_forbidden_edge(self):
        g = cycle_graph(4)
        # paths 0->1 of length 3 avoiding the direct edge: 0-3-2-1
        paths = list(simple_paths(g, 0, 1, 3, forbidden_edge=(0, 1)))
        assert paths == [(0, 3, 2, 1)]

    def test_count_in_complete_graph(self):
        g = complete_graph(5)
        # simple paths 0->1 with 2 edges: choose the middle from 3 others
        assert len(list(simple_paths(g, 0, 1, 2))) == 3
        # with 3 edges: ordered pairs from remaining 3: 3*2 = 6
        assert len(list(simple_paths(g, 0, 1, 3))) == 6


class TestThroughEdge:
    @pytest.mark.parametrize("k", range(3, 12))
    def test_pure_cycle(self, k):
        g = cycle_graph(k)
        assert has_cycle_through_edge(g, (0, 1), k)
        assert not has_cycle_through_edge(g, (0, 1), k + 1)
        if k > 3:
            assert not has_cycle_through_edge(g, (0, 1), k - 1)

    @pytest.mark.parametrize("k", [3, 4, 5, 6, 7, 8, 9])
    def test_find_returns_valid_path(self, k):
        g = complete_graph(max(k, 5))
        path = find_cycle_through_edge(g, (0, 1), k)
        assert path is not None
        assert path[0] == 0 and path[-1] == 1
        assert_is_cycle(g, path, k)

    def test_missing_edge(self):
        g = path_graph(4)
        assert not has_cycle_through_edge(g, (0, 2), 3)
        assert find_cycle_through_edge(g, (0, 2), 3) is None

    def test_bad_k(self):
        with pytest.raises(ConfigurationError):
            has_cycle_through_edge(cycle_graph(3), (0, 1), 2)

    def test_mitm_matches_dfs(self):
        """Meet-in-the-middle (k>=7) agrees with DFS enumeration."""
        for g in random_graphs(12, n_lo=7, n_hi=11, seed=42):
            if g.m == 0:
                continue
            for e in list(g.edges())[:5]:
                for k in (7, 8, 9):
                    dfs = any(True for _ in cycles_through_edge(g, e, k))
                    assert has_cycle_through_edge(g, e, k) == dfs

    def test_enumeration_is_exhaustive_on_k4(self):
        g = complete_graph(4)
        # C4s through edge (0,1): 0-a-b-1 with {a,b}={2,3}: 2 orderings
        assert len(list(cycles_through_edge(g, (0, 1), 4))) == 2


class TestWholeGraph:
    def test_k_cycle_in_grid(self):
        g = grid_graph(3, 3)
        assert has_k_cycle(g, 4)
        assert has_k_cycle(g, 6)
        assert has_k_cycle(g, 8)
        assert not has_k_cycle(g, 3)
        assert not has_k_cycle(g, 5)  # grids are bipartite

    def test_bipartite_no_odd(self):
        g = complete_bipartite_graph(3, 3)
        for k in (3, 5, 7):
            assert is_ck_free(g, k)
        for k in (4, 6):
            assert has_k_cycle(g, k)

    def test_find_k_cycle_witness(self):
        g = complete_graph(6)
        for k in (3, 4, 5, 6):
            cyc = find_k_cycle(g, k)
            assert cyc is not None
            assert_is_cycle(g, cyc, k)

    def test_counts_complete_graph(self):
        # #C3 in K5 = C(5,3) = 10; #C4 = C(5,4)*3 = 15; #C5 = 4!/2 = 12
        g = complete_graph(5)
        assert count_k_cycles(g, 3) == 10
        assert count_k_cycles(g, 4) == 15
        assert count_k_cycles(g, 5) == 12

    def test_counts_cycle_graph(self):
        assert count_k_cycles(cycle_graph(7), 7) == 1

    def test_enumerate_unique(self):
        g = complete_graph(5)
        cycles = list(enumerate_k_cycles(g, 4))
        assert len(cycles) == len(set(cycles)) == 15

    def test_counts_vs_networkx(self):
        """Cross-check triangle counts against networkx on random graphs."""
        import networkx as nx

        from repro.graphs import to_networkx

        for g in random_graphs(8, seed=5):
            nxg = to_networkx(g)
            expected = sum(nx.triangles(nxg).values()) // 3
            assert count_k_cycles(g, 3) == expected


class TestGirth:
    def test_forest(self):
        assert girth(path_graph(5)) is None
        assert girth(Graph(3)) is None

    @pytest.mark.parametrize("k", [3, 4, 5, 8, 11])
    def test_cycle(self, k):
        assert girth(cycle_graph(k)) == k

    def test_complete(self):
        assert girth(complete_graph(5)) == 3

    def test_petersen(self):
        # The Petersen graph has girth 5.
        outer = [(i, (i + 1) % 5) for i in range(5)]
        inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
        spokes = [(i, i + 5) for i in range(5)]
        g = Graph(10, outer + inner + spokes)
        assert girth(g) == 5

    def test_girth_via_smallest_k(self):
        """girth == min k with a k-cycle, on random graphs."""
        for g in random_graphs(10, seed=6):
            expected = None
            for k in range(3, g.n + 1):
                if has_k_cycle(g, k):
                    expected = k
                    break
            assert girth(g) == expected

"""Tests for the graph generators, including the paper-specific families."""

import pytest

from repro.errors import ConfigurationError
from repro.graphs import (
    barabasi_albert_graph,
    binary_tree_graph,
    blowup_graph,
    chorded_cycle_graph,
    ck_free_graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    disjoint_cycles_graph,
    erdos_renyi_gnm,
    erdos_renyi_gnp,
    figure1_graph,
    flower_graph,
    girth,
    grid_graph,
    has_k_cycle,
    high_girth_graph,
    hypercube_graph,
    is_ck_free,
    path_graph,
    planted_cycle_graph,
    planted_epsilon_far_graph,
    powerlaw_configuration_graph,
    random_regular_graph,
    random_tree,
    star_graph,
    theta_graph,
    torus_graph,
    watts_strogatz_graph,
)


class TestDeterministicFamilies:
    def test_cycle(self):
        g = cycle_graph(5)
        assert (g.n, g.m) == (5, 5)
        assert all(g.degree(v) == 2 for v in g.vertices())
        assert girth(g) == 5

    def test_cycle_too_small(self):
        with pytest.raises(ConfigurationError):
            cycle_graph(2)

    def test_path(self):
        g = path_graph(6)
        assert (g.n, g.m) == (6, 5)
        assert girth(g) is None

    def test_complete(self):
        g = complete_graph(6)
        assert g.m == 15
        assert all(g.degree(v) == 5 for v in g.vertices())

    def test_complete_bipartite(self):
        g = complete_bipartite_graph(3, 4)
        assert (g.n, g.m) == (7, 12)
        assert girth(g) == 4
        # bipartite: no odd cycles
        assert is_ck_free(g, 3)
        assert is_ck_free(g, 5)

    def test_star(self):
        g = star_graph(5)
        assert (g.n, g.m) == (6, 5)
        assert g.degree(0) == 5

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.n == 12
        assert g.m == 3 * 3 + 2 * 4  # horizontal + vertical
        assert girth(g) == 4

    def test_torus(self):
        g = torus_graph(3, 3)
        assert g.n == 9
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_torus_min_dims(self):
        with pytest.raises(ConfigurationError):
            torus_graph(2, 5)

    def test_hypercube(self):
        g = hypercube_graph(3)
        assert (g.n, g.m) == (8, 12)
        assert girth(g) == 4

    def test_binary_tree(self):
        g = binary_tree_graph(3)
        assert g.n == 15
        assert g.m == 14
        assert girth(g) is None


class TestRandomFamilies:
    def test_random_tree(self):
        g = random_tree(20, seed=1)
        assert g.m == 19
        assert g.is_connected()
        assert girth(g) is None

    def test_gnp_reproducible(self):
        a = erdos_renyi_gnp(30, 0.2, seed=7)
        b = erdos_renyi_gnp(30, 0.2, seed=7)
        assert a == b

    def test_gnp_extremes(self):
        assert erdos_renyi_gnp(10, 0.0, seed=0).m == 0
        assert erdos_renyi_gnp(10, 1.0, seed=0).m == 45

    def test_gnp_bad_p(self):
        with pytest.raises(ConfigurationError):
            erdos_renyi_gnp(10, 1.5)

    def test_gnm_exact_edges(self):
        for m in (0, 1, 10, 45):
            g = erdos_renyi_gnm(10, m, seed=3)
            assert g.m == m
            g.validate()

    def test_gnm_too_many(self):
        with pytest.raises(ConfigurationError):
            erdos_renyi_gnm(5, 11)

    def test_random_regular(self):
        g = random_regular_graph(12, 3, seed=5)
        assert all(g.degree(v) == 3 for v in g.vertices())
        g.validate()

    def test_random_regular_parity(self):
        with pytest.raises(ConfigurationError):
            random_regular_graph(5, 3)


class TestScaleFreeAndSmallWorld:
    def test_ba_counts(self):
        n, attach = 50, 3
        g = barabasi_albert_graph(n, attach, seed=1)
        assert g.n == n
        # seed star contributes `attach` edges, every later vertex `attach`
        assert g.m == attach + attach * (n - attach - 1)
        assert g.is_connected()

    def test_ba_hub_emerges(self):
        g = barabasi_albert_graph(200, 2, seed=3)
        degrees = sorted(g.degree(v) for v in g.vertices())
        # preferential attachment: the top hub far exceeds the median
        assert degrees[-1] >= 4 * degrees[len(degrees) // 2]
        assert degrees[0] >= 2  # every arrival brings `attach` edges

    def test_ba_reproducible(self):
        assert barabasi_albert_graph(40, 3, seed=9) == \
            barabasi_albert_graph(40, 3, seed=9)

    def test_ba_validation(self):
        with pytest.raises(ConfigurationError):
            barabasi_albert_graph(3, 3)
        with pytest.raises(ConfigurationError):
            barabasi_albert_graph(10, 0)

    @pytest.mark.parametrize("beta", [0.0, 0.2, 1.0])
    def test_ws_edge_count_preserved(self, beta):
        n, d = 40, 4
        g = watts_strogatz_graph(n, d, beta, seed=2)
        assert (g.n, g.m) == (n, n * d // 2)
        g.validate()

    def test_ws_lattice_at_beta_zero(self):
        g = watts_strogatz_graph(30, 4, 0.0, seed=0)
        assert all(g.degree(v) == 4 for v in g.vertices())
        assert g.is_connected()
        from repro.graphs import girth

        assert girth(g) == 3  # d=4 ring lattice has triangles

    def test_ws_rewiring_changes_graph(self):
        a = watts_strogatz_graph(40, 4, 0.0, seed=5)
        b = watts_strogatz_graph(40, 4, 0.8, seed=5)
        assert a != b

    def test_ws_validation(self):
        with pytest.raises(ConfigurationError):
            watts_strogatz_graph(10, 3, 0.1)  # odd d
        with pytest.raises(ConfigurationError):
            watts_strogatz_graph(4, 4, 0.1)  # d >= n
        with pytest.raises(ConfigurationError):
            watts_strogatz_graph(10, 4, 1.5)  # beta out of range

    def test_powerlaw_simple_and_reproducible(self):
        g = powerlaw_configuration_graph(60, 2.5, seed=4)
        g.validate()
        assert g.n == 60
        assert g.m > 0
        assert g == powerlaw_configuration_graph(60, 2.5, seed=4)

    def test_powerlaw_tail_heavier_for_smaller_exponent(self):
        flat = powerlaw_configuration_graph(300, 3.5, seed=6)
        heavy = powerlaw_configuration_graph(300, 1.8, seed=6)
        assert heavy.max_degree() > flat.max_degree()

    def test_powerlaw_min_degree_floor(self):
        g = powerlaw_configuration_graph(80, 2.2, min_degree=2, seed=7)
        # erased self-loops/duplicates can only lower degrees slightly;
        # the vast majority must sit at or above the floor
        low = sum(1 for v in g.vertices() if g.degree(v) < 2)
        assert low <= g.n // 10

    def test_powerlaw_validation(self):
        with pytest.raises(ConfigurationError):
            powerlaw_configuration_graph(50, 1.0)
        with pytest.raises(ConfigurationError):
            powerlaw_configuration_graph(50, 2.5, min_degree=0)
        with pytest.raises(ConfigurationError):
            powerlaw_configuration_graph(2, 2.5, min_degree=5)


class TestPaperFamilies:
    def test_figure1_exact(self):
        g = figure1_graph()
        assert (g.n, g.m) == (5, 7)
        # The 5-cycle (u, x, z, y, v) = (0, 2, 4, 3, 1) exists.
        for a, b in [(0, 2), (2, 4), (4, 3), (3, 1), (1, 0)]:
            assert g.has_edge(a, b)

    def test_theta(self):
        g = theta_graph(3, 4)
        assert g.n == 2 + 3 * 3
        assert g.m == 3 * 4
        assert g.degree(0) == 3 and g.degree(1) == 3
        # two paths of length 4 close an 8-cycle
        assert has_k_cycle(g, 8)
        assert girth(g) == 8

    def test_theta_args(self):
        with pytest.raises(ConfigurationError):
            theta_graph(0, 3)
        with pytest.raises(ConfigurationError):
            theta_graph(3, 1)

    def test_flower(self):
        k, petals = 5, 4
        g = flower_graph(petals, k)
        assert g.has_edge(0, 1)
        assert has_k_cycle(g, k)
        # every petal + shared edge is a k-cycle: count >= petals cycles
        from repro.graphs import count_k_cycles

        assert count_k_cycles(g, k) == petals

    def test_blowup_structure(self):
        k, w = 6, 3
        g = blowup_graph(w, k)
        assert g.n == 2 + (k - 2) * w
        assert g.has_edge(0, 1)
        assert has_k_cycle(g, k)
        from repro.graphs import has_cycle_through_edge

        assert has_cycle_through_edge(g, (0, 1), k)

    def test_blowup_k3(self):
        g = blowup_graph(4, 3)
        assert g.n == 2 + 4
        assert has_k_cycle(g, 3)

    def test_chorded_cycle(self):
        g = chorded_cycle_graph(6)
        assert g.m == 7
        assert has_k_cycle(g, 6)
        with pytest.raises(ConfigurationError):
            chorded_cycle_graph(5, chord=(0, 1))

    def test_disjoint_cycles(self):
        g = disjoint_cycles_graph(3, 5, connect=True)
        assert g.n == 15
        assert g.m == 15 + 2
        assert g.is_connected()
        from repro.graphs import count_k_cycles

        assert count_k_cycles(g, 5) == 3

    def test_disjoint_cycles_unconnected(self):
        g = disjoint_cycles_graph(2, 4, connect=False)
        assert not g.is_connected()
        assert g.m == 8


class TestPlantedInstances:
    @pytest.mark.parametrize("k", [3, 4, 5, 6, 8])
    def test_planted_cycle(self, k):
        g, cyc = planted_cycle_graph(20, k, seed=1, extra_edge_prob=0.05)
        assert len(cyc) == k
        for i in range(k):
            assert g.has_edge(cyc[i], cyc[(i + 1) % k])

    def test_planted_cycle_needs_room(self):
        with pytest.raises(ConfigurationError):
            planted_cycle_graph(4, 5)

    @pytest.mark.parametrize("k,eps", [(3, 0.1), (4, 0.1), (5, 0.05), (5, 0.15), (6, 0.1)])
    def test_planted_epsilon_far_certificate(self, k, eps):
        g, certified = planted_epsilon_far_graph(80, k, eps, seed=2)
        assert g.n == 80
        assert certified >= eps
        assert g.is_connected()
        assert has_k_cycle(g, k)

    def test_planted_epsilon_far_impossible(self):
        # eps close to 1 cannot be certified by cycle packing (max 1/k)
        with pytest.raises(ConfigurationError):
            planted_epsilon_far_graph(30, 5, 0.9, seed=0)

    def test_planted_epsilon_far_reproducible(self):
        a, _ = planted_epsilon_far_graph(50, 5, 0.1, seed=9)
        b, _ = planted_epsilon_far_graph(50, 5, 0.1, seed=9)
        assert a == b


class TestCkFreeInstances:
    @pytest.mark.parametrize("k", [3, 5, 7])
    def test_odd_k_bipartite(self, k):
        g = ck_free_graph(24, k, seed=4)
        assert is_ck_free(g, k)

    @pytest.mark.parametrize("k", [4, 6])
    def test_even_k_high_girth(self, k):
        g = ck_free_graph(30, k, seed=4)
        assert is_ck_free(g, k)

    def test_high_girth(self):
        g = high_girth_graph(40, girth_greater_than=6, seed=3)
        gg = girth(g)
        assert gg is None or gg > 6

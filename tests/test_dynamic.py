"""Dynamic-graph substrate tests: mutations, DynamicGraph, streams,
edge-stream serialisation, content hashing."""

import pytest

from repro.dynamic import DynamicGraph, Mutation, apply_mutation, build_stream
from repro.dynamic.mutations import ADD_EDGE, ADD_VERTEX, REMOVE_EDGE
from repro.dynamic.streams import names as stream_names, parse_stream_spec
from repro.errors import ConfigurationError, GraphError
from repro.graphs import (
    dumps_stream,
    erdos_renyi_gnp,
    loads_stream,
    read_edge_stream,
    write_edge_stream,
)
from repro.graphs.generators import cycle_graph, path_graph
from repro.graphs.graph import Graph


class TestMutation:
    def test_canonicalises_edge_order(self):
        m = Mutation(ADD_EDGE, 7, 3).canonical()
        assert (m.u, m.v) == (3, 7)
        assert m.edge == (3, 7)

    def test_line_round_trip(self):
        for m in [Mutation(ADD_EDGE, 1, 2), Mutation(REMOVE_EDGE, 0, 9),
                  Mutation(ADD_VERTEX)]:
            assert Mutation.from_line(m.to_line()) == m.canonical()

    def test_invalid_ops_and_shapes(self):
        with pytest.raises(GraphError):
            Mutation("frobnicate", 0, 1)
        with pytest.raises(GraphError):
            Mutation(ADD_EDGE, 3, 3)  # self-loop
        with pytest.raises(GraphError):
            Mutation(ADD_EDGE, 1)  # missing endpoint
        with pytest.raises(GraphError):
            Mutation(ADD_VERTEX, 1, 2)  # endpoints on add_vertex

    @pytest.mark.parametrize("line", [
        "x 1 2", "+ 1", "+ 1 2 3", "+ a b", "+v 3", "- -1 2", "",
    ])
    def test_malformed_lines(self, line):
        with pytest.raises(GraphError):
            Mutation.from_line(line, lineno=5)

    def test_malformed_line_reports_line_number(self):
        with pytest.raises(GraphError, match="line 5"):
            Mutation.from_line("junk", lineno=5)


class TestEdgeStreamFormat:
    def test_text_round_trip(self):
        muts = [Mutation(ADD_EDGE, 0, 1), Mutation(ADD_VERTEX),
                Mutation(REMOVE_EDGE, 0, 1), Mutation(ADD_EDGE, 2, 1)]
        text = dumps_stream(muts, comment="hello\nworld")
        assert text.startswith("# hello\n# world\n")
        parsed = loads_stream(text)
        assert parsed == [m.canonical() for m in muts]

    def test_file_round_trip(self, tmp_path):
        muts = [Mutation(ADD_EDGE, 3, 9), Mutation(ADD_VERTEX)]
        path = tmp_path / "s.stream"
        write_edge_stream(muts, path, comment="c")
        assert read_edge_stream(path) == muts

    def test_blank_lines_and_comments_skipped(self):
        assert loads_stream("\n# c\n\n+ 1 2\n") == [Mutation(ADD_EDGE, 1, 2)]

    def test_malformed_document_points_at_line(self):
        with pytest.raises(GraphError, match="line 3"):
            loads_stream("+ 1 2\n# ok\n+ nope\n")


class TestContentHash:
    def test_equal_graphs_equal_hashes(self):
        a = Graph(4, [(0, 1), (2, 3)])
        b = Graph(4, [(2, 3), (0, 1)])
        assert a.content_hash() == b.content_hash()

    def test_hash_depends_on_edges_and_n(self):
        a = Graph(4, [(0, 1)])
        assert a.content_hash() != Graph(4, [(0, 2)]).content_hash()
        assert a.content_hash() != Graph(5, [(0, 1)]).content_hash()

    def test_mutation_changes_then_restores_hash(self):
        g = Graph(4, [(0, 1), (1, 2)])
        before = g.content_hash()
        g.add_edge(2, 3)
        assert g.content_hash() != before
        g.remove_edge(2, 3)
        assert g.content_hash() == before

    def test_graph_still_unhashable(self):
        with pytest.raises(TypeError):
            hash(Graph(2, [(0, 1)]))
        with pytest.raises(TypeError):
            {Graph(1): "nope"}


class TestDynamicGraph:
    def test_logs_and_versions(self):
        dyn = DynamicGraph(path_graph(4))
        dyn.add_edge(0, 3)
        dyn.add_vertex()
        dyn.remove_edge(0, 3)
        assert dyn.version == 3
        assert [m.op for m in dyn.log] == [ADD_EDGE, ADD_VERTEX, REMOVE_EDGE]
        assert dyn.n == 5 and dyn.m == 3

    def test_base_is_copied(self):
        g = path_graph(3)
        dyn = DynamicGraph(g)
        g.add_edge(0, 2)  # caller's copy must not leak into history
        assert dyn.m == 2
        assert dyn.as_of(0).m == 2

    def test_as_of_replays_history(self):
        dyn = DynamicGraph(path_graph(4))
        dyn.add_edge(0, 3)
        dyn.remove_edge(1, 2)
        assert dyn.as_of(0) == path_graph(4)
        assert dyn.as_of(1).has_edge(0, 3)
        assert dyn.as_of(1).has_edge(1, 2)
        assert not dyn.as_of(2).has_edge(1, 2)
        with pytest.raises(GraphError):
            dyn.as_of(3)

    def test_invalid_mutation_leaves_state_untouched(self):
        dyn = DynamicGraph(path_graph(3))
        with pytest.raises(GraphError):
            dyn.add_edge(0, 1)  # duplicate
        with pytest.raises(GraphError):
            dyn.remove_edge(0, 2)  # absent
        assert dyn.version == 0 and dyn.m == 2

    def test_snapshot_and_replay(self):
        dyn = DynamicGraph(cycle_graph(5))
        dyn.add_vertex()
        dyn.add_edge(0, 5)
        snap = dyn.snapshot()
        assert snap.version == 2
        assert snap.content_hash == dyn.content_hash()
        twin = DynamicGraph.replay(cycle_graph(5), dyn.log)
        assert twin.content_hash() == snap.content_hash
        # The snapshot graph is frozen: mutating dyn does not touch it.
        dyn.remove_edge(0, 5)
        assert snap.graph.has_edge(0, 5)

    def test_apply_mutation_helper(self):
        g = path_graph(3)
        apply_mutation(g, Mutation(ADD_EDGE, 0, 2))
        assert g.has_edge(0, 2)


class TestStreams:
    def test_registry_names(self):
        assert {"uniform-churn", "burst", "near-cycle", "growth"} <= set(
            stream_names()
        )

    def test_parse_stream_spec(self):
        name, params = parse_stream_spec("burst:steps=10,burst=2")
        assert name == "burst"
        assert params == {"steps": 10, "burst": 2}

    @pytest.mark.parametrize("bad", [
        "no-such-stream", "burst:steps", "burst:unknown=3", "", "burst:=4",
    ])
    def test_parse_stream_spec_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            parse_stream_spec(bad)

    @pytest.mark.parametrize("spec", [
        "uniform-churn:steps=15,p=0.5",
        "burst:steps=15,burst=3",
        "near-cycle:steps=15",
        "growth:steps=15,p=0.4,attach=2",
    ])
    def test_streams_are_valid_and_deterministic(self, spec):
        base = erdos_renyi_gnp(14, 0.15, seed=2)
        a = build_stream(spec, base, seed=9, k=5)
        b = build_stream(spec, base, seed=9, k=5)
        assert a.mutations == b.mutations
        assert len(a.mutations) == 15
        # Validity: the whole sequence applies cleanly (Graph ops raise
        # on duplicates/absences) and final_graph is reproducible.
        assert a.final_graph() == b.final_graph()
        assert build_stream(spec, base, seed=10, k=5).mutations != a.mutations

    def test_growth_only_inserts(self):
        base = cycle_graph(6)
        stream = build_stream("growth:steps=20", base, seed=1, k=5)
        assert all(m.op in (ADD_EDGE, ADD_VERTEX) for m in stream.mutations)
        final = stream.final_graph()
        assert final.n >= base.n and final.m >= base.m

    def test_burst_terminates_on_unmutable_graph(self):
        # n < 2: no edge can ever be added or removed; the scenario must
        # return (empty) instead of spinning forever.
        stream = build_stream("burst:steps=6,burst=2", Graph(1), seed=0, k=5)
        assert stream.mutations == ()

    def test_near_cycle_needs_k_vertices(self):
        with pytest.raises(ConfigurationError):
            build_stream("near-cycle:steps=4", path_graph(3), seed=0, k=5)

    def test_near_cycle_toggles_template_edges_only(self):
        base = path_graph(8)
        stream = build_stream("near-cycle:steps=30", base, seed=3, k=5)
        template = {(i, (i + 1) % 5) for i in range(5)}
        template = {(min(u, v), max(u, v)) for u, v in template}
        assert {m.edge for m in stream.mutations} <= template


class TestSnapshotAtomicity:
    """Regression: snapshot() must not tear against concurrent apply().

    Graph.__hash__ is None (content identity is explicit), so the only
    link between a snapshot's fields is construction-time consistency:
    the version, the content hash and the frozen graph must all describe
    the *same* point of the mutation history even when another thread is
    appending mutations mid-snapshot.  Before the fix the three fields
    were read in separate steps, so a racing apply() could produce e.g.
    version V paired with the hash of state V+1.
    """

    def test_snapshot_fields_are_mutually_consistent(self):
        import threading

        dyn = DynamicGraph(Graph(4))
        failures = []
        snapshots = []

        def writer():
            for _ in range(800):
                dyn.add_vertex()

        def snapshotter():
            # Fixed iteration count: overlap with the writer is
            # best-effort (scheduling-dependent), the consistency
            # assertions hold either way.
            for _ in range(150):
                snap = dyn.snapshot()
                # The frozen copy is the state the hash was taken from.
                if snap.graph.content_hash() != snap.content_hash:
                    failures.append("hash does not match frozen graph")
                # Pure vertex growth: n is determined by the version, so
                # a torn (version, graph) pair is directly visible.
                if snap.graph.n != 4 + snap.version:
                    failures.append(
                        f"version {snap.version} paired with n={snap.graph.n}"
                    )
                snapshots.append(snap)

        w = threading.Thread(target=writer)
        s1 = threading.Thread(target=snapshotter)
        s2 = threading.Thread(target=snapshotter)
        for t in (s1, s2, w):
            t.start()
        for t in (w, s1, s2):
            t.join()
        assert not failures, failures[:3]
        assert len(snapshots) == 300
        # Replaying the log prefix reproduces a sample snapshot exactly.
        sample = snapshots[len(snapshots) // 2]
        assert dyn.as_of(sample.version).content_hash() == sample.content_hash

    def test_snapshot_graph_is_frozen_copy(self):
        dyn = DynamicGraph(Graph(3))
        dyn.add_edge(0, 1)
        snap = dyn.snapshot()
        dyn.add_edge(1, 2)
        assert snap.graph.m == 1
        assert snap.version == 1
        assert dyn.version == 2
        assert snap.content_hash != dyn.content_hash()

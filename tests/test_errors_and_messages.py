"""Small targeted tests for the error types and message containers."""

from repro.congest import SequenceBundle, SizeModel, tag_order_key
from repro.errors import (
    BandwidthExceededError,
    CongestError,
    ConfigurationError,
    GraphError,
    ProtocolError,
    ReproError,
)


class TestErrorHierarchy:
    def test_all_are_repro_errors(self):
        for exc in (GraphError, CongestError, ProtocolError, ConfigurationError):
            assert issubclass(exc, ReproError)
        assert issubclass(BandwidthExceededError, CongestError)

    def test_bandwidth_error_payload(self):
        err = BandwidthExceededError(3, (1, 2), bits=500, budget=100)
        assert err.round_index == 3
        assert err.edge == (1, 2)
        assert err.bits == 500
        assert err.budget == 100
        assert "round 3" in str(err)
        assert "500 bits" in str(err)


class TestSequenceBundle:
    def test_tag_none_without_rank(self):
        b = SequenceBundle(frozenset({(1, 2)}))
        assert b.tag is None

    def test_tag_with_rank(self):
        b = SequenceBundle(frozenset({(1, 2)}), rank=7, edge=(0, 5))
        assert b.tag == (7, (0, 5))

    def test_len_and_empty(self):
        assert len(SequenceBundle(frozenset())) == 0
        assert SequenceBundle(frozenset()).is_empty()
        assert not SequenceBundle(frozenset({(1,)})).is_empty()

    def test_tag_total_order(self):
        tags = [(3, (0, 1)), (1, (9, 10)), (1, (2, 3)), (2, (0, 1))]
        ordered = sorted(tags, key=tag_order_key)
        assert ordered == [(1, (2, 3)), (1, (9, 10)), (2, (0, 1)), (3, (0, 1))]


class TestSizeModelEdges:
    def test_minimum_bits(self):
        model = SizeModel.for_network(1, 1)
        assert model.id_bits >= 1
        assert model.rank_bits >= 1

    def test_budget_floor(self):
        model = SizeModel(id_bits=4, budget_factor=8)
        assert model.budget_bits(2) == 8  # 8 * ceil(log2(2))
        assert model.budget_bits(1) == 8  # clamped log

    def test_empty_bundle_costs_header_only(self):
        model = SizeModel(id_bits=10)
        assert model.bundle_bits(SequenceBundle(frozenset())) == 8

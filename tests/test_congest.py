"""Tests for the CONGEST simulator: scheduler semantics, delivery,
instrumentation, ID assignment and the size model."""

import pytest

from repro.congest import (
    Broadcast,
    IdentityIds,
    Network,
    NodeProgram,
    RandomPermutationIds,
    ReverseIds,
    SequenceBundle,
    SizeModel,
    SpreadIds,
    SynchronousScheduler,
)
from repro.errors import BandwidthExceededError, CongestError, ProtocolError
from repro.graphs import cycle_graph, path_graph, star_graph


class EchoProgram(NodeProgram):
    """Round 1: send own ID to all; later rounds: forward max seen."""

    def __init__(self, ctx):
        self.best = ctx.my_id
        self.finished_with = None

    def on_start(self, ctx):
        return Broadcast(ctx.my_id)

    def on_round(self, ctx, round_index, inbox):
        if inbox:
            self.best = max(self.best, max(inbox.values()))
        return Broadcast(self.best)

    def on_finish(self, ctx, inbox):
        if inbox:
            self.best = max(self.best, max(inbox.values()))
        self.finished_with = dict(inbox)
        return self.best


class TestNetwork:
    def test_ids_and_contexts(self):
        g = path_graph(3)
        net = Network(g)
        assert net.ids() == (0, 1, 2)
        ctx = net.context(1)
        assert ctx.my_id == 1
        assert ctx.neighbor_ids == (0, 2)
        assert ctx.degree == 2
        assert ctx.n_hint == 3 and ctx.m_hint == 2

    def test_reverse_ids(self):
        g = path_graph(3)
        net = Network(g, ReverseIds())
        assert net.node_id(0) == 2
        assert net.vertex_of(2) == 0
        assert net.context(0).neighbor_ids == (1,)

    def test_edge_ids_sorted(self):
        net = Network(path_graph(2), ReverseIds())
        assert net.edge_ids(0, 1) == (0, 1)  # sorted by ID, not vertex

    def test_unknown_id(self):
        net = Network(path_graph(2))
        with pytest.raises(CongestError):
            net.vertex_of(99)

    def test_random_ids_distinct_poly_range(self):
        g = cycle_graph(20)
        net = Network(g, RandomPermutationIds(seed=3))
        ids = net.ids()
        assert len(set(ids)) == 20
        assert all(0 <= i < 400 for i in ids)

    def test_spread_ids_distinct(self):
        net = Network(cycle_graph(17), SpreadIds())
        assert len(set(net.ids())) == 17

    def test_default_size_model(self):
        net = Network(cycle_graph(8))
        model = net.default_size_model()
        assert model.id_bits == 3  # identity IDs on 8 nodes -> 3 bits
        assert model.rank_bits == 6  # m = 8 -> ceil(log2(64))


class TestSchedulerSemantics:
    def test_flood_max_takes_diameter_rounds(self):
        """Max-ID flooding on a path: after r rounds, ID n-1 has travelled
        r hops — verifies lock-step (no same-round forwarding)."""
        n = 6
        g = path_graph(n)
        for rounds in range(1, n):
            result = SynchronousScheduler(Network(g)).run(
                lambda ctx: EchoProgram(ctx), num_rounds=rounds
            )
            # Vertex 0 learns ID n-1 only after n-1 rounds.
            expected = rounds  # after r rounds vertex 0 knows IDs 0..r
            assert result.outputs[0] == expected

    def test_zero_rounds_rejected(self):
        with pytest.raises(ProtocolError):
            SynchronousScheduler(Network(path_graph(2))).run(
                lambda ctx: EchoProgram(ctx), num_rounds=0
            )

    def test_broadcast_reaches_all_neighbors(self):
        g = star_graph(4)
        result = SynchronousScheduler(Network(g)).run(
            lambda ctx: EchoProgram(ctx), num_rounds=1
        )
        # all leaves see the centre's ID 0; centre sees max leaf ID 4
        assert result.outputs[0] == 4
        assert all(result.outputs[v] == max(v, 0) for v in range(1, 5))

    def test_directed_outbox_respects_topology(self):
        class OneShot(NodeProgram):
            def on_start(self, ctx):
                return {99: "x"}  # not a neighbour anywhere

            def on_round(self, ctx, r, inbox):
                return None

            def on_finish(self, ctx, inbox):
                return None

        with pytest.raises(ProtocolError):
            SynchronousScheduler(Network(path_graph(3))).run(
                lambda ctx: OneShot(), num_rounds=1
            )

    def test_invalid_outbox_type(self):
        class Bad(NodeProgram):
            def on_start(self, ctx):
                return 42

            def on_round(self, ctx, r, inbox):
                return None

            def on_finish(self, ctx, inbox):
                return None

        with pytest.raises(ProtocolError):
            SynchronousScheduler(Network(path_graph(2))).run(
                lambda ctx: Bad(), num_rounds=1
            )

    def test_none_messages_not_delivered(self):
        class Quiet(NodeProgram):
            def on_start(self, ctx):
                return {nb: None for nb in ctx.neighbor_ids}

            def on_round(self, ctx, r, inbox):
                return None

            def on_finish(self, ctx, inbox):
                return len(inbox)

        result = SynchronousScheduler(Network(path_graph(3))).run(
            lambda ctx: Quiet(), num_rounds=1
        )
        assert all(v == 0 for v in result.outputs.values())

    def test_determinism(self):
        g = cycle_graph(9)
        r1 = SynchronousScheduler(Network(g)).run(
            lambda ctx: EchoProgram(ctx), num_rounds=4
        )
        r2 = SynchronousScheduler(Network(g)).run(
            lambda ctx: EchoProgram(ctx), num_rounds=4
        )
        assert r1.outputs == r2.outputs
        assert r1.trace.summary() == r2.trace.summary()

    def test_outputs_by_id(self):
        g = path_graph(3)
        net = Network(g, ReverseIds())
        result = SynchronousScheduler(net).run(
            lambda ctx: EchoProgram(ctx), num_rounds=2
        )
        by_id = result.outputs_by_id(net)
        assert set(by_id) == {0, 1, 2}


class TestInstrumentation:
    def test_message_counts(self):
        g = cycle_graph(5)
        result = SynchronousScheduler(Network(g)).run(
            lambda ctx: EchoProgram(ctx), num_rounds=3
        )
        trace = result.trace
        assert trace.num_rounds == 3
        # Broadcast on a cycle: every node sends to 2 neighbours each round.
        assert all(r.messages == 10 for r in trace.rounds)
        assert trace.total_messages == 30
        assert trace.total_bits > 0

    def test_bundle_sequence_accounting(self):
        class SendBundle(NodeProgram):
            def on_start(self, ctx):
                seqs = frozenset({(1, 2), (3, 4), (5, 6)})
                return Broadcast(SequenceBundle(seqs))

            def on_round(self, ctx, r, inbox):
                return None

            def on_finish(self, ctx, inbox):
                return None

        result = SynchronousScheduler(Network(path_graph(2))).run(
            lambda ctx: SendBundle(), num_rounds=1
        )
        assert result.trace.max_sequences_per_message == 3

    def test_strict_bandwidth_raises(self):
        class Flood(NodeProgram):
            def on_start(self, ctx):
                big = frozenset({(i, i + 1) for i in range(0, 40_000, 2)})
                return Broadcast(SequenceBundle(big))

            def on_round(self, ctx, r, inbox):
                return None

            def on_finish(self, ctx, inbox):
                return None

        sched = SynchronousScheduler(Network(path_graph(2)), strict_bandwidth=True)
        with pytest.raises(BandwidthExceededError):
            sched.run(lambda ctx: Flood(), num_rounds=1)

    def test_max_edge_recorded(self):
        g = star_graph(3)
        result = SynchronousScheduler(Network(g)).run(
            lambda ctx: EchoProgram(ctx), num_rounds=1
        )
        assert result.trace.rounds[0].max_edge is not None


class TestSizeModel:
    def test_for_network_defaults(self):
        model = SizeModel.for_network(100, 300)
        assert model.id_bits == 14  # ceil(log2(100^2))
        assert model.rank_bits == 17  # ceil(log2(300^2))

    def test_sequence_bits(self):
        model = SizeModel(id_bits=10)
        assert model.sequence_bits((1, 2, 3)) == 38  # 3*10 + 8

    def test_bundle_bits_with_tag(self):
        model = SizeModel(id_bits=10, rank_bits=20)
        bundle = SequenceBundle(frozenset({(1, 2)}), rank=5, edge=(1, 2))
        # 8 (count) + 20 + 2*10 (tag) + (2*10 + 8) (sequence)
        assert model.bundle_bits(bundle) == 8 + 40 + 28

    def test_budget_scales_with_log_n(self):
        model = SizeModel(id_bits=10, budget_factor=4)
        assert model.budget_bits(1024) == 40

    def test_bundle_requires_tuples(self):
        with pytest.raises(TypeError):
            SequenceBundle(frozenset({[1, 2]}))  # type: ignore[arg-type]


class TestIdAssignmentInvariance:
    def test_duplicate_ids_rejected(self):
        class BadIds(IdentityIds):
            def assign(self, n):
                return [0] * n

        with pytest.raises(CongestError):
            Network(path_graph(3), BadIds())

    def test_negative_ids_rejected(self):
        class NegIds(IdentityIds):
            def assign(self, n):
                return list(range(-1, n - 1))

        with pytest.raises(CongestError):
            Network(path_graph(3), NegIds())

"""Incremental-vs-scratch parity: the dynamic subsystem's equivalence gate.

Randomized (seed-fixed) mutation sequences over **every** registered
generator family, asserting at every step that the incremental
``CkMonitor`` verdict equals full re-detection — the exact oracle —
for both engines, that both engines' monitors agree step for step, and
that cached witnesses are genuine cycles.  The cross-check against
from-scratch seeded ``CkFreenessTester`` runs goes through
:func:`repro.dynamic.equivalence.monitor_equivalence_report`.
"""

import pytest

from repro.dynamic import CkMonitor, build_stream, monitor_equivalence_report
from repro.graphs.cycles import has_k_cycle
from repro.runner import registry

# Small parameters so building every registered family stays cheap
# (mirrors tests/test_runner.py::SMALL).
SMALL = dict(n=20, m=12, rows=3, cols=3, dim=3, height=2, paths=3,
             path_length=2, width=2, cycles=2, eps=0.1, p=0.12,
             attach=2, d=4, beta=0.2, exponent=2.5)

K = 5
STEPS = 10


def small_instance(family: str, seed: int):
    """A small instance of ``family`` built through the registry."""
    return registry.build_graph(family, seed=seed, **{**SMALL, "k": K})


@pytest.mark.parametrize("family", registry.names())
def test_every_family_monitor_matches_scratch_both_engines(family):
    base = small_instance(family, seed=1)
    if base.n < 2:
        pytest.skip("churn needs at least two vertices")
    stream = build_stream(f"uniform-churn:steps={STEPS},p=0.5", base,
                          seed=11, k=K)
    monitors = {
        engine: CkMonitor(stream.base, K, engine=engine, seed=7)
        for engine in ("reference", "fast")
    }
    # Step -1: initial verdicts agree with the oracle.
    expected = not has_k_cycle(base, K)
    for engine, monitor in monitors.items():
        assert monitor.accepted == expected, (family, engine, "init")
    for step, mutation in enumerate(stream.mutations, start=1):
        records = {
            engine: monitor.apply(mutation)
            for engine, monitor in monitors.items()
        }
        ref = monitors["reference"]
        # Incremental == full re-detection (the exact oracle), per step.
        expected = not has_k_cycle(ref.graph, K)
        for engine, monitor in monitors.items():
            assert monitor.accepted == expected, (
                family, engine, step, mutation.to_line()
            )
            if not monitor.accepted:
                w = monitor.witness
                assert w is not None and len(set(w)) == len(w) == K
                assert all(
                    monitor.graph.has_edge(w[i], w[(i + 1) % K])
                    for i in range(K)
                ), (family, engine, step, w)
        # Both engines took the same decision path, not just the same
        # verdict.
        assert records["reference"].action == records["fast"].action, (
            family, step
        )


def test_equivalence_gate_default_grid_both_engines():
    """The mandatory gate: monitor == from-scratch tester at every step.

    Covers the four scenario shapes (churn, burst, adversarial
    near-cycle, growth) for both engines; ``tester_repetitions=40``
    keeps the from-scratch runs fast while leaving the miss probability
    of an existing cycle far below reproducibility noise — and the whole
    sweep is seed-fixed, so a pass here is a pass everywhere.
    """
    report = monitor_equivalence_report(
        ks=(4, 5), seeds=(0,), engines=("reference", "fast"),
        tester_repetitions=40,
    )
    assert report.steps_checked > 300
    assert report.ok, report.mismatches[:10]


@pytest.mark.slow
def test_equivalence_gate_paper_repetitions():
    """The same gate at the paper's repetition count and more seeds."""
    report = monitor_equivalence_report(
        ks=(4, 5, 6), seeds=(0, 1), engines=("reference", "fast"),
    )
    assert report.ok, report.mismatches[:10]


def test_gate_catches_a_lying_monitor(monkeypatch):
    """The gate actually fires: sabotage the monitor, expect mismatches."""
    from repro.dynamic import monitor as monitor_mod

    real_apply = monitor_mod.CkMonitor.apply

    def lying_apply(self, mutation):
        record = real_apply(self, mutation)
        self._accepted = True  # claim C_k-freeness unconditionally
        self._witness = None
        return record

    monkeypatch.setattr(monitor_mod.CkMonitor, "apply", lying_apply)
    report = monitor_equivalence_report(
        grid=[("near-cycle:steps=12", "path", {"n": 10})],
        ks=(5,), seeds=(0,), engines=("reference",),
        tester_repetitions=20,
    )
    assert not report.ok
    assert {m.check for m in report.mismatches} >= {"oracle"}

"""Tests for the ``repro bench`` CLI and the ``python -m repro.bench``
entry point (tiny areas only; the perf gate itself is exercised on
synthetic artifacts)."""

import json

import pytest

from repro.bench import artifact_path, write_artifact
from repro.bench.cli import main as bench_main
from repro.cli import main as repro_main
from repro.testing import synthetic_bench_artifact


def _write_synthetic_dir(directory, slowdown=1.0):
    for area in ("alpha", "beta"):
        write_artifact(
            directory,
            synthetic_bench_artifact(
                area,
                benchmarks=(f"{area}.one", f"{area}.two"),
                slowdown=slowdown,
            ),
        )


class TestBenchList:
    def test_lists_areas_and_benchmarks(self, capsys):
        assert repro_main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        for area in ("phase1", "engines", "campaign", "through_edge"):
            assert area in out

    def test_module_entry_point_shares_commands(self, capsys):
        assert bench_main(["list"]) == 0
        assert "registered benchmarks" in capsys.readouterr().out


class TestBenchRun:
    def test_run_writes_artifacts_and_reports(self, tmp_path, capsys):
        rc = repro_main([
            "bench", "run", "--suite", "smoke", "--areas",
            "combinatorics,primitives", "--out", str(tmp_path),
            "--repeats", "1",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2 area(s)" in out
        for area in ("combinatorics", "primitives"):
            assert artifact_path(tmp_path, area).exists()

    def test_run_parallel_workers_match_serial_metrics(self, tmp_path):
        repro_main(["bench", "run", "--areas", "combinatorics", "--out",
                    str(tmp_path / "serial"), "--repeats", "1"])
        repro_main(["bench", "run", "--areas", "combinatorics", "--out",
                    str(tmp_path / "parallel"), "--workers", "2",
                    "--repeats", "1"])
        serial = json.loads(
            artifact_path(tmp_path / "serial", "combinatorics").read_text()
        )
        parallel = json.loads(
            artifact_path(tmp_path / "parallel", "combinatorics").read_text()
        )
        def keyed(art):
            return {
                (r["benchmark"], r["case_id"]): r["metrics"]
                for r in art["results"]
            }
        assert keyed(serial) == keyed(parallel)

    def test_unknown_area_is_clean_error(self):
        with pytest.raises(SystemExit, match="unknown benchmark area"):
            repro_main(["bench", "run", "--areas", "nope"])


class TestBenchCompare:
    def test_identical_dirs_pass(self, tmp_path, capsys):
        _write_synthetic_dir(tmp_path / "base")
        _write_synthetic_dir(tmp_path / "fresh")
        rc = repro_main([
            "bench", "compare", "--baseline", str(tmp_path / "base"),
            "--fresh", str(tmp_path / "fresh"),
        ])
        assert rc == 0
        assert "PASS" in capsys.readouterr().out

    def test_injected_10x_slowdown_exits_nonzero(self, tmp_path, capsys):
        _write_synthetic_dir(tmp_path / "base")
        _write_synthetic_dir(tmp_path / "fresh", slowdown=10.0)
        rc = repro_main([
            "bench", "compare", "--baseline", str(tmp_path / "base"),
            "--fresh", str(tmp_path / "fresh"),
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "FAIL" in out
        assert "regression" in out

    def test_generous_threshold_tolerates_mild_noise(self, tmp_path):
        _write_synthetic_dir(tmp_path / "base")
        _write_synthetic_dir(tmp_path / "fresh", slowdown=2.0)
        assert repro_main([
            "bench", "compare", "--baseline", str(tmp_path / "base"),
            "--fresh", str(tmp_path / "fresh"), "--threshold", "4.0",
        ]) == 0

    def test_table_flag_prints_pairings(self, tmp_path, capsys):
        _write_synthetic_dir(tmp_path / "base")
        _write_synthetic_dir(tmp_path / "fresh")
        assert repro_main([
            "bench", "compare", "--baseline", str(tmp_path / "base"),
            "--fresh", str(tmp_path / "fresh"), "--table",
        ]) == 0
        assert "verdict" in capsys.readouterr().out

    def test_missing_fresh_dir_is_clean_error(self, tmp_path):
        _write_synthetic_dir(tmp_path / "base")
        with pytest.raises(SystemExit, match="artifact directory"):
            repro_main([
                "bench", "compare", "--baseline", str(tmp_path / "base"),
                "--fresh", str(tmp_path / "nowhere"),
            ])

    def test_real_run_compares_clean_against_itself(self, tmp_path, capsys):
        # End-to-end: a real (tiny) measured artifact gates against
        # itself with the default threshold.
        repro_main(["bench", "run", "--areas", "combinatorics", "--out",
                    str(tmp_path), "--repeats", "1"])
        capsys.readouterr()
        assert repro_main([
            "bench", "compare", "--baseline", str(tmp_path),
            "--fresh", str(tmp_path),
        ]) == 0


class TestBenchReport:
    def test_report_renders_artifacts(self, tmp_path, capsys):
        _write_synthetic_dir(tmp_path)
        assert repro_main(["bench", "report", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "BENCH_alpha" in out and "BENCH_beta" in out
        assert "wall_min ms" in out

    def test_report_area_filter(self, tmp_path, capsys):
        _write_synthetic_dir(tmp_path)
        assert repro_main([
            "bench", "report", "--dir", str(tmp_path), "--areas", "alpha",
        ]) == 0
        out = capsys.readouterr().out
        assert "BENCH_alpha" in out and "BENCH_beta" not in out

    def test_report_empty_dir_is_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="no BENCH_"):
            repro_main(["bench", "report", "--dir", str(tmp_path)])

"""Tests for evidence verification, girth estimation and multi-k scans."""

import pytest

from helpers import random_graphs
from repro.congest import Network, RandomPermutationIds
from repro.core import test_ck_freeness, verify_cycle_evidence
from repro.errors import ConfigurationError
from repro.extensions import estimate_girth, scan_cycle_lengths
from repro.graphs import (
    Graph,
    complete_bipartite_graph,
    cycle_graph,
    girth,
    grid_graph,
    has_k_cycle,
    path_graph,
    planted_epsilon_far_graph,
    random_tree,
    torus_graph,
)


class TestVerifyEvidence:
    def test_accepts_genuine_evidence(self):
        g, _ = planted_epsilon_far_graph(60, 5, 0.1, seed=1)
        net = Network(g, RandomPermutationIds(seed=2))
        res = test_ck_freeness(g, 5, 0.1, seed=3, network=net)
        assert res.rejected
        assert verify_cycle_evidence(g, res.evidence, 5, network=net)

    def test_rejects_wrong_length(self):
        g = cycle_graph(5)
        assert not verify_cycle_evidence(g, (0, 1, 2, 3, 4), 4)

    def test_rejects_none(self):
        assert not verify_cycle_evidence(cycle_graph(5), None, 5)

    def test_rejects_non_cycle(self):
        g = path_graph(5)
        assert not verify_cycle_evidence(g, (0, 1, 2, 3, 4), 5)

    def test_rejects_repeated_vertex(self):
        g = cycle_graph(5)
        assert not verify_cycle_evidence(g, (0, 1, 2, 1, 4), 5)

    def test_rejects_unknown_ids(self):
        g = cycle_graph(5)
        net = Network(g)
        assert not verify_cycle_evidence(g, (90, 91, 92, 93, 94), 5, network=net)

    def test_through_edge_constraint(self):
        g = cycle_graph(5)
        assert verify_cycle_evidence(g, (0, 1, 2, 3, 4), 5, through_edge=(0, 1))
        g2 = cycle_graph(5)
        g2.add_edge(0, 2)
        # the 5-cycle does not pass through the chord (0, 2)
        assert not verify_cycle_evidence(
            g2, (0, 1, 2, 3, 4), 5, through_edge=(0, 2)
        )


class TestGirthEstimation:
    @pytest.mark.parametrize("n", [3, 5, 7, 9])
    def test_exact_on_cycle_graphs(self, n):
        est = estimate_girth(cycle_graph(n), k_max=n + 1, seed=1)
        assert est.girth_upper_bound == n
        assert est.witness is not None

    def test_torus(self):
        g = torus_graph(4, 4)
        est = estimate_girth(g, k_max=6, seed=2)
        assert est.girth_upper_bound == 4

    def test_forest_finds_nothing(self):
        est = estimate_girth(random_tree(20, seed=1), k_max=8, seed=3)
        assert est.girth_upper_bound is None
        assert est.ks_probed == (3, 4, 5, 6, 7, 8)

    def test_empty_graph(self):
        est = estimate_girth(Graph(4), k_max=5, seed=0)
        assert est.girth_upper_bound is None
        assert est.rounds_used == 0

    def test_never_underestimates(self):
        """Soundness: any reported bound is a real cycle length, hence
        >= the true girth."""
        for g in random_graphs(10, seed=42):
            est = estimate_girth(g, k_max=8, seed=7)
            true = girth(g)
            if est.girth_upper_bound is not None:
                assert true is not None
                assert est.girth_upper_bound >= true

    def test_bad_kmax(self):
        with pytest.raises(ConfigurationError):
            estimate_girth(cycle_graph(4), k_max=2)


class TestMultiKScan:
    def test_grid_spectrum(self):
        g = grid_graph(4, 4)
        res = scan_cycle_lengths(g, [3, 4, 5, 6, 8], seed=0)
        assert res.detected[4] and res.detected[6] and res.detected[8]
        assert not res.detected[3] and not res.detected[5]  # bipartite

    def test_evidence_verifies(self):
        g = torus_graph(4, 5)
        res = scan_cycle_lengths(g, [4, 5], seed=1, repetitions=12)
        for k, found in res.detected.items():
            if found:
                assert verify_cycle_evidence(g, res.evidence[k], k)

    def test_soundness_never_fabricates(self):
        """A detected k must truly have a k-cycle — for all random runs."""
        for g in random_graphs(8, seed=11):
            if g.m == 0:
                continue
            res = scan_cycle_lengths(g, [3, 4, 5, 6], seed=5, repetitions=3)
            for k, found in res.detected.items():
                if found:
                    assert has_k_cycle(g, k)
                    assert verify_cycle_evidence(g, res.evidence[k], k)

    def test_rounds_shared_across_ks(self):
        """One multi-k execution costs the rounds of the largest k only."""
        g = complete_bipartite_graph(4, 4)
        res = scan_cycle_lengths(g, [4, 6, 8], seed=2, repetitions=1)
        assert res.rounds == 1 + 8 // 2

    def test_empty_graph(self):
        res = scan_cycle_lengths(Graph(3), [3, 4], seed=0)
        assert not any(res.detected.values())

    def test_bad_ks(self):
        with pytest.raises(ConfigurationError):
            scan_cycle_lengths(cycle_graph(4), [])
        with pytest.raises(ConfigurationError):
            scan_cycle_lengths(cycle_graph(4), [2, 4])

"""Tests for the full distributed Ck-freeness tester (Theorem 1)."""

import math

import numpy as np
import pytest

from helpers import assert_is_cycle
from repro.congest import Network
from repro.core import CkFreenessTester, repetitions_needed, test_ck_freeness
from repro.errors import ConfigurationError
from repro.graphs import (
    Graph,
    ck_free_graph,
    cycle_graph,
    disjoint_cycles_graph,
    path_graph,
    planted_epsilon_far_graph,
)


class TestConfiguration:
    def test_bad_k(self):
        with pytest.raises(ConfigurationError):
            CkFreenessTester(2, 0.1)

    def test_bad_eps(self):
        with pytest.raises(ConfigurationError):
            CkFreenessTester(5, 0.0)
        with pytest.raises(ConfigurationError):
            CkFreenessTester(5, 1.0)

    def test_bad_repetitions(self):
        with pytest.raises(ConfigurationError):
            CkFreenessTester(5, 0.1, repetitions=0)

    def test_default_repetitions_formula(self):
        t = CkFreenessTester(5, 0.1)
        assert t.repetitions == repetitions_needed(0.1)
        assert t.repetitions == math.ceil((math.e ** 2 / 0.1) * math.log(3))


class TestOneSidedError:
    """If G is Ck-free, every node accepts with probability 1 — verified
    over many seeds (any failure would disprove 1-sidedness outright)."""

    @pytest.mark.parametrize("k", [3, 4, 5, 6])
    def test_free_graphs_always_accepted(self, k):
        rng = np.random.default_rng(k)
        for trial in range(6):
            g = ck_free_graph(18, k, seed=int(rng.integers(2**31)))
            res = test_ck_freeness(
                g, k, 0.2, seed=int(rng.integers(2**31)), repetitions=5
            )
            assert res.accepted
            assert res.evidence is None

    def test_trees_accepted_full_repetitions(self):
        res = test_ck_freeness(path_graph(12), 5, 0.1, seed=0)
        assert res.accepted
        assert res.repetitions_run == res.repetitions_planned

    def test_empty_graph(self):
        res = test_ck_freeness(Graph(5), 4, 0.1, seed=0)
        assert res.accepted
        assert res.repetitions_run == 0


class TestDetection:
    def test_single_cycle_rejected_quickly(self):
        """C_k itself: the minimum-rank edge is always on the cycle."""
        for k in (3, 4, 5, 6, 7):
            res = test_ck_freeness(cycle_graph(k), k, 0.3, seed=11)
            assert res.rejected
            assert res.evidence is not None

    def test_eps_far_rejected_with_good_probability(self):
        """Empirical rejection rate on certified ε-far instances must meet
        the paper's 2/3 bound (it is far higher in practice since every
        repetition where the min edge is on a cycle succeeds)."""
        k, eps, trials = 5, 0.1, 12
        rng = np.random.default_rng(5)
        rejected = 0
        for _ in range(trials):
            g, _ = planted_epsilon_far_graph(
                60, k, eps, seed=int(rng.integers(2**31))
            )
            res = test_ck_freeness(g, k, eps, seed=int(rng.integers(2**31)))
            rejected += int(res.rejected)
        assert rejected / trials >= 2 / 3

    def test_evidence_verified_against_graph(self):
        g, _ = planted_epsilon_far_graph(50, 4, 0.1, seed=2)
        net = Network(g)
        res = test_ck_freeness(g, 4, 0.1, seed=3, network=net)
        assert res.rejected
        verts = [net.vertex_of(i) for i in res.evidence]
        assert_is_cycle(g, verts, 4)

    def test_stop_on_reject_behaviour(self):
        g = disjoint_cycles_graph(6, 4, connect=False)
        tester = CkFreenessTester(4, 0.2, repetitions=10)
        eager = tester.run(g, seed=1, stop_on_reject=True)
        assert eager.rejected
        assert eager.repetitions_run <= 10
        full = tester.run(g, seed=1, stop_on_reject=False)
        assert full.rejected
        assert full.repetitions_run == 10
        # same seed => the repetition reports agree on shared prefix
        for a, b in zip(eager.reports, full.reports):
            assert a.rejected == b.rejected


class TestRoundComplexity:
    def test_rounds_per_repetition(self):
        for k in (3, 4, 5, 6, 7, 8):
            tester = CkFreenessTester(k, 0.1, repetitions=1)
            res = tester.run(cycle_graph(k + 2), seed=0, keep_traces=True)
            assert res.rounds_per_repetition == 1 + k // 2
            assert res.traces[0].num_rounds == 1 + k // 2

    def test_total_rounds_independent_of_n(self):
        counts = set()
        for n in (12, 48, 96):
            tester = CkFreenessTester(5, 0.2, repetitions=3)
            res = tester.run(path_graph(n), seed=0, stop_on_reject=False)
            counts.add(res.total_rounds)
        assert len(counts) == 1

    def test_total_rounds_scale_inverse_eps(self):
        r1 = repetitions_needed(0.1)
        r2 = repetitions_needed(0.2)
        assert r1 >= 2 * r2 - 2  # ~inverse proportional

    def test_traces_kept_on_request(self):
        tester = CkFreenessTester(4, 0.2, repetitions=2)
        res = tester.run(path_graph(8), seed=0, keep_traces=True)
        assert len(res.traces) == 2


class TestResultObject:
    def test_repr_mentions_verdict(self):
        res = test_ck_freeness(path_graph(6), 3, 0.2, seed=0, repetitions=2)
        assert "accept" in repr(res)
        res2 = test_ck_freeness(cycle_graph(3), 3, 0.2, seed=0, repetitions=4)
        assert "reject" in repr(res2)

    def test_reports_indexed(self):
        res = test_ck_freeness(path_graph(6), 3, 0.2, seed=0, repetitions=3)
        assert [r.index for r in res.reports] == [0, 1, 2]

    def test_max_sequences_property(self):
        tester = CkFreenessTester(5, 0.2, repetitions=2)
        res = tester.run(cycle_graph(9), seed=0, keep_traces=True)
        assert res.max_sequences_per_message >= 0

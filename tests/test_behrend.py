"""Tests for Behrend/Salem-Spencer sets and cycle-Behrend graphs."""

import pytest

from repro.errors import ConfigurationError
from repro.graphs import (
    behrend_cycle_graph,
    behrend_set,
    has_k_cycle,
    is_progression_free,
    salem_spencer_set,
)
from repro.graphs.behrend import planted_behrend_cycles
from repro.graphs.farness import cycle_edges


class TestProgressionFree:
    def test_detects_ap(self):
        assert not is_progression_free([1, 3, 5])
        assert not is_progression_free([0, 2, 4, 9])

    def test_accepts_ap_free(self):
        assert is_progression_free([0, 1, 3, 4])  # no 3-AP? 1,?,4 no; 0,2?no
        assert is_progression_free([1])
        assert is_progression_free([])

    def test_duplicates_ignored(self):
        assert is_progression_free([2, 2, 5])


class TestSalemSpencer:
    @pytest.mark.parametrize("n", [1, 5, 20, 64, 200])
    def test_output_ap_free(self, n):
        s = salem_spencer_set(n)
        assert is_progression_free(s)
        assert all(0 <= x < n for x in s)
        assert s == sorted(set(s))

    def test_greedy_is_maximal(self):
        n = 50
        s = set(salem_spencer_set(n))
        for x in range(n):
            if x in s:
                continue
            assert not is_progression_free(sorted(s | {x})), (
                f"{x} could have been added -> greedy not maximal"
            )

    def test_density(self):
        # The greedy set on [0,100) is reasonably large (>= 12 elements).
        assert len(salem_spencer_set(100)) >= 12


class TestBehrendSet:
    @pytest.mark.parametrize("n", [10, 64, 300, 1000])
    def test_ap_free_and_in_range(self, n):
        s = behrend_set(n)
        assert is_progression_free(s)
        assert all(0 <= x < n for x in s)
        assert len(s) >= 1

    def test_grows(self):
        assert len(behrend_set(1000)) > len(behrend_set(50))


class TestBehrendCycleGraph:
    @pytest.mark.parametrize("k", [3, 4, 5, 6])
    def test_planted_cycles_exist(self, k):
        g, planted = behrend_cycle_graph(7, k)
        assert planted, "expected at least one planted cycle"
        for cyc in planted:
            assert len(cyc) == k
            for i in range(k):
                assert g.has_edge(cyc[i], cyc[(i + 1) % k])
        assert has_k_cycle(g, k)

    def test_planted_cycles_edge_disjoint(self):
        g, planted = behrend_cycle_graph(11, 5)
        seen = set()
        for cyc in planted:
            for e in cycle_edges(cyc):
                assert e not in seen, "planted cycles share an edge"
                seen.add(e)

    def test_k_partite_structure(self):
        k, M = 4, 6
        g, _ = behrend_cycle_graph(M, k)
        assert g.n == k * M
        # no edge inside a part
        for u, v in g.edges():
            assert u // M != v // M

    def test_custom_strides(self):
        g, planted = behrend_cycle_graph(10, 3, strides=[1, 2])
        assert len(planted) > 0

    def test_duplicate_strides_rejected(self):
        with pytest.raises(ConfigurationError):
            behrend_cycle_graph(10, 3, strides=[1, 11])  # 11 ≡ 1 (mod 10)

    def test_bad_args(self):
        with pytest.raises(ConfigurationError):
            behrend_cycle_graph(5, 2)
        with pytest.raises(ConfigurationError):
            behrend_cycle_graph(1, 3)

    def test_count_helper(self):
        assert planted_behrend_cycles(7, 3) > 0

"""Tests for the public differential-fuzzing harness."""

from repro.graphs import cycle_graph, path_graph
from repro.testing import TrialFailure, check_one, differential_campaign


class TestCheckOne:
    def test_clean_instance(self):
        failures = check_one(cycle_graph(5), (0, 1), 5)
        assert failures == []

    def test_with_all_checkers(self):
        failures = check_one(
            cycle_graph(6), (0, 1), 6, include_naive=True, include_monien=True
        )
        assert failures == []

    def test_negative_instance(self):
        failures = check_one(path_graph(6), (0, 1), 4, include_monien=True)
        assert failures == []


class TestCampaign:
    def test_small_campaign_is_clean(self):
        report = differential_campaign(trials=25, seed=3)
        assert report.ok, report.failures
        assert report.checks > 0
        assert "ok" in repr(report)

    def test_campaign_with_comparators(self):
        report = differential_campaign(
            trials=10, seed=4, include_naive=True, include_monien=True,
            k_range=(3, 6),
        )
        assert report.ok, report.failures

    def test_failure_replay_carries_instance(self):
        f = TrialFailure(
            kind="x", k=4, edge=(0, 1), edges=((0, 1), (1, 2)), n=3, detail="d"
        )
        g = f.replay_graph()
        assert g.n == 3 and g.m == 2

    def test_deterministic_given_seed(self):
        a = differential_campaign(trials=8, seed=9)
        b = differential_campaign(trials=8, seed=9)
        assert (a.trials, a.checks) == (b.trials, b.checks)

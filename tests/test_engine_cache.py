"""The compiled-instance cache: behaviour, bounds, and transparency.

:class:`~repro.congest.engine.cache.EngineCache` may change *when* an
engine is compiled, never *what* any caller observes.  Covered here:

* LRU mechanics — hit/miss/eviction counters, the ``max_entries`` bound,
  ``close()`` on evicted engines, ``clear()``, ``nbytes``;
* telemetry/profiler rebinding on hits (counters land in the caller's
  registry, exactly as a fresh engine would put them);
* CSR memoisation, including caller-supplied version keys;
* cached == uncached results for ``detect_cycle_through_edge`` and the
  tester;
* the dynamic monitor's per-step verdict/witness/action stream is
  identical under every cache policy (the satellite contract for the
  CSR-extracted ball recheck);
* fork hygiene: a child process drops inherited entries instead of
  closing resources it does not own.
"""

import pytest

from repro.congest.engine.cache import EngineCache, global_engine_cache
from repro.core.algorithm1 import detect_cycle_through_edge
from repro.core.tester import CkFreenessTester
from repro.dynamic import CkMonitor, build_stream
from repro.errors import ConfigurationError
from repro.graphs.generators import (
    ck_free_graph,
    cycle_graph,
    planted_epsilon_far_graph,
)
from repro.obs import Telemetry


class TestCacheMechanics:
    def test_bad_max_entries(self):
        with pytest.raises(ConfigurationError):
            EngineCache(max_entries=0)

    def test_bad_spec_surfaces_before_hashing(self):
        with pytest.raises(ConfigurationError):
            EngineCache().get("reference:chunk=2", cycle_graph(5))

    def test_miss_then_hit(self):
        cache = EngineCache()
        g = cycle_graph(8)
        first = cache.get("fast", g)
        second = cache.get("fast", g)
        assert first is second
        assert (cache.misses, cache.hits) == (1, 1)
        assert len(cache) == 1

    def test_key_includes_spec_strictness_and_content(self):
        cache = EngineCache()
        g = cycle_graph(8)
        eng = cache.get("fast", g)
        assert cache.get("fast:chunk=2", g) is not eng
        assert cache.get("fast", g, strict_bandwidth=True) is not eng
        h = g.copy()
        h.add_edge(0, 4)
        assert cache.get("fast", h) is not eng
        assert cache.misses == 4 and cache.hits == 0

    def test_snapshot_isolation(self):
        """A cached engine keeps the content it was filed under even if
        the caller's graph mutates afterwards."""
        cache = EngineCache()
        g = cycle_graph(6)
        eng = cache.get("fast", g)
        g.add_edge(0, 3)
        assert eng.network.graph.m == 6
        assert cache.get("fast", g) is not eng  # new content, new compile

    def test_lru_eviction_closes_engines(self):
        cache = EngineCache(max_entries=2)
        closed = []

        class _Closeable:
            def __init__(self, tag):
                self.tag = tag

            def close(self):
                closed.append(self.tag)

        for i in range(4):
            cache._insert(("engine", str(i)), _Closeable(i))
        assert len(cache) == 2
        assert closed == [0, 1]
        assert cache.evictions == 2

    def test_clear_empties_and_counts_nothing(self):
        cache = EngineCache()
        g = cycle_graph(8)
        cache.get("fast", g)
        cache.csr(g)
        assert len(cache) == 2 and cache.nbytes > 0
        cache.clear()
        assert len(cache) == 0 and cache.nbytes == 0

    def test_csr_memoisation_and_version_keys(self):
        cache = EngineCache()
        g = cycle_graph(8)
        a = cache.csr(g)
        b = cache.csr(g)
        assert a is b
        # A caller-supplied key bypasses content hashing entirely: the
        # entry stays keyed to the version, not the live graph.
        keyed = cache.csr(g, key=("v", 0))
        g.add_edge(0, 4)
        assert cache.csr(g, key=("v", 0)) is keyed
        assert cache.csr(g, key=("v", 1)) is not keyed

    def test_global_cache_is_a_singleton(self):
        assert global_engine_cache() is global_engine_cache()

    def test_fork_check_drops_without_closing(self):
        cache = EngineCache()
        closed = []

        class _Closeable:
            def close(self):
                closed.append(True)

        cache._insert(("engine", "x"), _Closeable())
        cache._pid -= 1  # simulate waking up in a forked child
        cache._check_fork()
        assert len(cache) == 0
        assert closed == []  # resources belong to the parent


class TestCacheTransparency:
    def test_detect_results_identical(self):
        g, _ = planted_epsilon_far_graph(50, 5, 0.1, seed=2)
        edge = next(iter(g.edges()))
        cache = EngineCache()

        def run(c):
            det = detect_cycle_through_edge(g, edge, 5, engine="fast", cache=c)
            return det.detected, tuple(sorted(det.rejecting_vertices))

        plain = run(None)
        assert [run(cache) for _ in range(3)] == [plain] * 3
        assert (cache.misses, cache.hits) == (1, 2)

    def test_hits_rebind_telemetry(self):
        """Counters from a warm hit land in the caller's registry, not
        the registry the engine was compiled under."""
        g, _ = planted_epsilon_far_graph(40, 5, 0.1, seed=6)
        cache = EngineCache()
        first, second = Telemetry(), Telemetry()

        def run(tel):
            return CkFreenessTester(
                5, 0.1, repetitions=3, engine="fast", telemetry=tel, cache=cache
            ).run(g, seed=9, stop_on_reject=False)

        assert run(first).accepted == run(second).accepted
        assert cache.hits == 1
        key = "repro_congest_runs_total"
        assert first.summary()[key] == second.summary()[key] == 3

    def test_faults_and_explicit_networks_bypass_the_cache(self):
        from repro.congest.faults import DropFaults
        from repro.congest.network import Network

        g = cycle_graph(9)
        cache = EngineCache()
        CkFreenessTester(
            5, 0.1, repetitions=2, engine="reference", cache=cache,
            faults=DropFaults(0.5, seed=0),
        ).run(g, seed=1)
        CkFreenessTester(
            5, 0.1, repetitions=2, engine="reference", cache=cache
        ).run(g, seed=1, network=Network(g))
        assert cache.misses == 0 and cache.hits == 0 and len(cache) == 0


class TestMonitorStreamRegression:
    """Satellite contract: the CSR-ball recheck changes no verdict.

    The monitor's per-step stream (action taken, verdict, witness, flip
    flag) must be byte-identical whether balls are extracted from cached
    CSR arrays (any cache policy) or by the legacy per-step BFS
    (``cache=False``)."""

    @staticmethod
    def _stream_fingerprint(mon, mutations):
        records = mon.run_stream(mutations)
        return [
            (r.version, r.action, r.accepted, r.witness, r.flipped)
            for r in records
        ], mon.stats.as_dict()

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    @pytest.mark.parametrize("spec", ["growth:steps=40", "near-cycle:steps=30"])
    def test_verdict_stream_identical_under_every_cache_policy(
        self, engine, spec
    ):
        # A C5-free base: insertions then land on the accepted side of
        # the decision tree, which is where the CSR ball recheck lives.
        base = ck_free_graph(30, 5, seed=11)
        stream = build_stream(spec, base, seed=7, k=5)
        runs = {}
        for policy in (False, None, EngineCache()):
            mon = CkMonitor(
                base.copy(), 5, engine=engine, seed=3, cache=policy
            )
            runs[repr(policy)] = self._stream_fingerprint(
                mon, stream.mutations
            )
        baseline = runs["False"]  # legacy BFS path
        assert all(run == baseline for run in runs.values())
        records, stats = baseline
        assert stats["steps"] == len(records)
        # The stream must actually exercise the insertion recheck path.
        assert stats["local_rechecks"] > 0

"""Tests for the analysis/experiment harness and table rendering."""

import pytest

from repro.analysis import (
    Table,
    format_float,
    run_detection_rates,
    run_farness_packing,
    run_message_bound,
    run_phase1_statistics,
    run_pruning_vs_naive,
    run_round_complexity,
    run_through_edge_exactness,
    wilson_interval,
)


class TestTable:
    def test_render_alignment(self):
        t = Table(["a", "long column"], title="demo")
        t.add_row(1, 2.5)
        t.add_row(1000, "x")
        out = t.render()
        lines = out.split("\n")
        assert lines[0] == "demo"
        assert "a" in lines[1] and "long column" in lines[1]
        # all data lines equal width
        assert len(lines[3]) == len(lines[4])

    def test_wrong_arity(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_format_float(self):
        assert format_float(True) == "yes"
        assert format_float(False) == "no"
        assert format_float(0.0) == "0"
        assert format_float(0.123456) == "0.1235"
        assert format_float(123456.0) == "1.235e+05"
        assert format_float("text") == "text"

    def test_str_is_render(self):
        t = Table(["x"])
        t.add_row(5)
        assert str(t) == t.render()


class TestWilson:
    def test_zero_trials(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(7, 10)
        assert lo < 0.7 < hi

    def test_perfect_success_has_nontrivial_lower(self):
        lo, hi = wilson_interval(20, 20)
        assert hi == 1.0
        assert 0.8 < lo < 1.0

    def test_bounds_clamped(self):
        lo, hi = wilson_interval(0, 5)
        assert lo == 0.0
        assert hi < 1.0


class TestExperimentRunners:
    """Smoke-level runs with tiny configurations; the shape assertions are
    the ones EXPERIMENTS.md relies on."""

    def test_round_complexity_rows(self):
        res = run_round_complexity(ns=(32, 64), ks=(3, 5), epsilons=(0.2,))
        assert len(res.rows) == 4
        for row in res.rows:
            assert row["simulated"] == row["per"]
        assert "T1" in res.experiment
        assert res.render()

    def test_message_bound_all_ok(self):
        res = run_message_bound(ks=(5, 6), scale=6)
        assert res.rows
        assert all(r["ok"] for r in res.rows)

    def test_detection_rates_guarantees(self):
        res = run_detection_rates(k=4, eps=0.2, n=40, trials=6, seed=2)
        rows = {r["cls"]: r for r in res.rows}
        assert rows["free"]["rate"] == 1.0
        assert rows["far"]["rate"] >= 2 / 3

    def test_phase1_statistics(self):
        res = run_phase1_statistics(ms=(4, 16), trials=400, seed=1)
        assert all(r["ok"] for r in res.rows)

    def test_farness_packing(self):
        res = run_farness_packing(k=4, eps=0.1, ns=(40, 60), seed=0)
        assert all(r["ok"] for r in res.rows)

    def test_pruning_vs_naive_shape(self):
        res = run_pruning_vs_naive(k=7, widths=(2, 4), cap=2000)
        assert res.rows[-1]["naive"] >= res.rows[0]["naive"]
        assert all(r["pruned"] <= r["bound"] for r in res.rows)

    def test_through_edge_exactness(self):
        res = run_through_edge_exactness(ks=(3, 5), n=30, trials_per_k=3, seed=1)
        for row in res.rows:
            assert row["detected"] == row["trials"]
            assert row["false_pos"] == 0

"""Telemetry threading end to end: the bit-identity guarantee.

The observability layer's core promise: instrumentation never touches
protocol randomness or verdicts.  These tests run the tester, the
detection primitive, the dynamic monitor and a campaign with telemetry
on and off on identical seeds and require identical results — plus the
CLI plumbing (``--telemetry``, ``--verbose``/``--quiet``,
``repro obs report``).
"""

import json

import pytest

from repro.cli import main
from repro.congest.engine import available_engines
from repro.core import CkFreenessTester
from repro.core.algorithm1 import detect_cycle_through_edge
from repro.dynamic.campaign import run_monitor_stream
from repro.graphs import cycle_graph, planted_epsilon_far_graph
from repro.obs import Telemetry, parse_textfile, read_events

ENGINES = available_engines()


def _tester_outcome(graph, telemetry):
    result = CkFreenessTester(
        5, 0.1, repetitions=6, telemetry=telemetry
    ).run(graph, seed=11, stop_on_reject=False)
    return (
        result.accepted,
        result.evidence,
        [(r.index, r.rejected, r.cycle_ids) for r in result.reports],
    )


class TestBitIdentity:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_tester_verdicts_identical_with_telemetry(self, engine):
        g, _ = planted_epsilon_far_graph(40, 5, 0.1, seed=3)
        tel = Telemetry()
        base = _tester_outcome(g, None)
        assert _tester_outcome(g, tel) == base
        # and the run really was instrumented
        summary = tel.summary()
        assert summary["repro_tester_repetitions_total"] == 6
        assert summary["repro_congest_runs_total"] == 6
        assert summary["repro_congest_rounds_total"] > 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_detect_identical_with_telemetry(self, engine):
        g = cycle_graph(5)
        tel = Telemetry()
        base = detect_cycle_through_edge(g, (0, 1), 5, engine=engine)
        inst = detect_cycle_through_edge(
            g, (0, 1), 5, engine=engine, telemetry=tel
        )
        assert inst.detected == base.detected
        assert inst.run.trace.num_rounds == base.run.trace.num_rounds
        assert tel.summary()["repro_detect_hits_total"] == 1

    def test_monitor_stream_identical_with_telemetry(self):
        base = cycle_graph(8)
        kwargs = dict(engine="reference", seed=4, epsilon=0.2)
        off = run_monitor_stream(base, "uniform-churn:steps=30", 5, **kwargs)
        tel = Telemetry()
        on = run_monitor_stream(
            base, "uniform-churn:steps=30", 5, telemetry=tel, **kwargs
        )
        assert on == off
        summary = tel.summary()
        assert summary["repro_monitor_steps_total"] == 30
        assert "repro_monitor_cache_hits_total" in summary
        # protocol-determined histogram: summary carries {count, sum}
        ball = summary["repro_monitor_ball_size"][""]
        assert ball["count"] == tel.registry.get(
            "repro_monitor_ball_size"
        ).count()
        assert ball["sum"] >= ball["count"]


class TestCampaignTelemetry:
    def run_campaign(self, tmp_path, store_name, name="tel"):
        store = tmp_path / f"{store_name}.jsonl"
        rc = main([
            "campaign", "run", "--name", name,
            "--generators", "cycle", "--ns", "10", "--ks", "4",
            "--algorithms", "detect,monitor", "--repetitions", "1",
            "--streams", "uniform-churn:steps=10",
            "--store", str(store), "--workers", "1",
        ])
        assert rc == 0
        return [json.loads(line) for line in store.read_text().splitlines()]

    def test_records_carry_deterministic_telemetry(self, tmp_path, capsys):
        # Same campaign into two stores: the per-run private Telemetry
        # must produce identical summaries (no wall clock, no ordering
        # sensitivity).
        a = self.run_campaign(tmp_path, "a")
        b = self.run_campaign(tmp_path, "b")
        capsys.readouterr()
        assert [r["telemetry"] for r in a] == [r["telemetry"] for r in b]
        stream_rows = [r for r in a if r.get("stream")]
        assert stream_rows, "campaign produced no temporal rows"
        tel = stream_rows[0]["telemetry"]
        assert tel["repro_monitor_steps_total"] == 10
        detect_rows = [r for r in a if not r.get("stream")]
        assert detect_rows[0]["telemetry"]["repro_congest_runs_total"] == 1

    def test_report_shows_round_and_hit_columns(self, tmp_path, capsys):
        store = tmp_path / "a.jsonl"
        self.run_campaign(tmp_path, "a")
        capsys.readouterr()
        rc = main(["campaign", "report", "--store", str(store)])
        out = capsys.readouterr().out
        assert rc == 0
        for column in ("mean rounds", "mean msgs", "hit rate"):
            assert column in out

    def test_report_degrades_on_pretelemetry_stores(self, tmp_path, capsys):
        # Old stores have no "telemetry" field: columns become "-".
        store = tmp_path / "old.jsonl"
        self.run_campaign(tmp_path, "old")
        capsys.readouterr()
        stripped = [
            {k: v for k, v in json.loads(line).items() if k != "telemetry"}
            for line in store.read_text().splitlines()
        ]
        store.write_text(
            "".join(json.dumps(r) + "\n" for r in stripped)
        )
        rc = main(["campaign", "report", "--store", str(store)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "mean rounds" in out


class TestCliPlumbing:
    def test_telemetry_flag_writes_events_and_textfile(self, tmp_path, capsys):
        path = tmp_path / "tel.jsonl"
        rc = main([
            "test", "--generator", "cycle", "--n", "6", "--k", "6",
            "--eps", "0.3", "--seed", "3", "--telemetry", str(path),
        ])
        capsys.readouterr()
        assert rc == 1  # C6 in a C6-freeness test: reject
        events = read_events(path)
        assert events[-1]["type"] == "snapshot"
        assert any(
            e.get("type") == "span" and e.get("name") == "tester.run"
            for e in events
        )
        families = parse_textfile((tmp_path / "tel.jsonl.prom").read_text())
        assert "repro_tester_rejects_total" in families

    def test_obs_report_reads_both_artifacts(self, tmp_path, capsys):
        path = tmp_path / "tel.jsonl"
        main([
            "test", "--generator", "cycle", "--n", "6", "--k", "6",
            "--eps", "0.3", "--seed", "3", "--telemetry", str(path),
        ])
        capsys.readouterr()
        rc = main([
            "obs", "report", "--events", str(path),
            "--textfile", str(path) + ".prom",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "tester.run" in out
        assert "metric families (valid)" in out

    def test_verdict_identical_with_and_without_telemetry_flag(
        self, tmp_path, capsys
    ):
        base = ["test", "--generator", "eps-far", "--n", "40", "--k", "4",
                "--eps", "0.1", "--seed", "2"]
        rc_off = main(base)
        out_off = capsys.readouterr().out
        rc_on = main(base + ["--telemetry", str(tmp_path / "t.jsonl")])
        out_on = capsys.readouterr().out
        assert rc_on == rc_off
        verdicts_off = [
            line for line in out_off.splitlines() if "TesterResult" in line
        ]
        verdicts_on = [
            line for line in out_on.splitlines() if "TesterResult" in line
        ]
        assert verdicts_on == verdicts_off

    def test_quiet_suppresses_diagnostics(self, capsys):
        main(["test", "--generator", "eps-far", "--n", "40", "--k", "4",
              "--eps", "0.1", "--seed", "2"])
        assert "# eps-far instance" in capsys.readouterr().out
        main(["--quiet", "test", "--generator", "eps-far", "--n", "40",
              "--k", "4", "--eps", "0.1", "--seed", "2"])
        out = capsys.readouterr().out
        assert "# eps-far instance" not in out
        assert "TesterResult" in out  # results are not diagnostics

    def test_verbose_shows_debug_fields(self, capsys):
        main(["--verbose", "test", "--generator", "cycle", "--n", "6",
              "--k", "6", "--eps", "0.3", "--seed", "3"])
        assert "# graph built n=6" in capsys.readouterr().out

"""Tests for Erdős–Hajnal–Moon representative families."""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.combinatorics import (
    count_k_subsets,
    disjoint_subsets,
    ehm_bound,
    greedy_bound,
    greedy_representative_family,
    is_representative,
    k_subsets,
)


class TestSubsetUtilities:
    def test_k_subsets_count(self):
        subs = list(k_subsets([1, 2, 3, 4], 2))
        assert len(subs) == 6
        assert all(len(s) == 2 for s in subs)

    def test_k_subsets_zero(self):
        assert list(k_subsets([1, 2], 0)) == [frozenset()]

    def test_k_subsets_negative(self):
        with pytest.raises(ValueError):
            list(k_subsets([1], -1))

    def test_count(self):
        assert count_k_subsets(5, 2) == 10
        assert count_k_subsets(3, 5) == 0
        assert count_k_subsets(3, -1) == 0

    def test_disjoint_subsets(self):
        subs = list(disjoint_subsets([1, 2, 3, 4], 2, avoid=[1]))
        assert all(1 not in s for s in subs)
        assert len(subs) == 3


class TestGreedyFamily:
    def test_empty_family(self):
        assert greedy_representative_family([], 2) == []

    def test_first_always_kept(self):
        fam = greedy_representative_family([{1, 2}], 0)
        assert fam == [frozenset({1, 2})]

    def test_duplicate_sets_collapse(self):
        fam = greedy_representative_family([{1, 2}, {2, 1}], 3)
        assert len(fam) == 1

    def test_subset_domination(self):
        # {1} ⊆ {1, 2}: once {1} is kept, {1,2} must be discarded.
        fam = greedy_representative_family([{1}, {1, 2}], 3)
        assert fam == [frozenset({1})]

    def test_q_zero_keeps_one(self):
        # q=0: the only witness is the empty set, consumed by the first.
        fam = greedy_representative_family([{1}, {2}, {3}], 0)
        assert len(fam) == 1

    def test_singletons_keep_q_plus_one(self):
        """Pairwise disjoint singletons: greedy keeps exactly q+1 (the
        (q+1)^p bound with p=1 is tight)."""
        family = [{i} for i in range(10)]
        for q in range(0, 5):
            fam = greedy_representative_family(family, q)
            assert len(fam) == q + 1

    def test_negative_q(self):
        with pytest.raises(ValueError):
            greedy_representative_family([{1}], -1)

    def test_respects_greedy_bound(self):
        family = [frozenset(c) for c in combinations(range(8), 2)]
        for q in (1, 2, 3):
            fam = greedy_representative_family(family, q)
            assert len(fam) <= greedy_bound(2, q)


class TestRepresentationProperty:
    @settings(max_examples=120, deadline=None)
    @given(
        family=st.lists(
            st.frozensets(st.integers(0, 6), min_size=1, max_size=3),
            min_size=1,
            max_size=8,
        ),
        q=st.integers(0, 3),
    )
    def test_greedy_output_is_representative(self, family, q):
        """The core EHM property, brute-forced over the ground set."""
        sub = greedy_representative_family(family, q)
        ground = sorted({x for s in family for x in s})
        assert is_representative(sub, family, q, ground)

    def test_is_representative_detects_failure(self):
        # family {1},{2}; subfamily {1}; C={1} of size 1: {2} disjoint from
        # C but subfamily has nothing disjoint from C.
        assert not is_representative([{1}], [{1}, {2}], 1, [1, 2])

    def test_is_representative_accepts_full_family(self):
        family = [{1, 2}, {3}]
        assert is_representative(family, family, 2, [1, 2, 3, 4])


class TestBounds:
    def test_ehm_bound(self):
        assert ehm_bound(2, 3) == 10
        assert ehm_bound(0, 5) == 1

    def test_greedy_bound(self):
        assert greedy_bound(2, 3) == 16
        assert greedy_bound(3, 0) == 1

    @settings(max_examples=60, deadline=None)
    @given(
        family=st.lists(
            st.frozensets(st.integers(0, 8), min_size=2, max_size=2),
            min_size=0,
            max_size=12,
        ),
        q=st.integers(0, 3),
    )
    def test_greedy_size_bound_p2(self, family, q):
        fam = greedy_representative_family(family, q)
        assert len(fam) <= greedy_bound(2, q)

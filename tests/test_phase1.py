"""Tests for Phase 1: rank drawing, edge selection, priority multiplexing."""

import numpy as np
import pytest

from helpers import assert_is_cycle, random_graphs
from repro.congest import Network, SynchronousScheduler, tag_order_key
from repro.core import DetectionOutcome, MultiplexedCkProgram, draw_ranks, protocol_rounds
from repro.errors import ConfigurationError
from repro.graphs import (
    cycle_graph,
    disjoint_cycles_graph,
    has_k_cycle,
    path_graph,
    star_graph,
)


def run_multiplexed(graph, k, seed, network=None):
    net = network if network is not None else Network(graph)
    scheduler = SynchronousScheduler(net)
    return net, scheduler.run(
        lambda ctx: MultiplexedCkProgram(ctx, k, seed),
        num_rounds=protocol_rounds(k),
    )


class TestDrawRanks:
    def test_only_owned_edges(self):
        rng = np.random.default_rng(0)
        draws = draw_ranks(5, (1, 3, 7, 9), m=10, rng=rng)
        assert [d.edge for d in draws] == [(5, 7), (5, 9)]

    def test_rank_range(self):
        rng = np.random.default_rng(0)
        m = 6
        for _ in range(50):
            for d in draw_ranks(0, (1, 2, 3), m=m, rng=rng):
                assert 1 <= d.rank <= m * m

    def test_no_edges_for_largest_id(self):
        rng = np.random.default_rng(0)
        assert draw_ranks(9, (1, 2, 3), m=5, rng=rng) == []

    def test_requires_edges(self):
        with pytest.raises(ConfigurationError):
            draw_ranks(0, (1,), m=0, rng=np.random.default_rng(0))

    def test_tag_order(self):
        assert tag_order_key((1, (5, 6))) < tag_order_key((2, (0, 1)))
        assert tag_order_key((2, (0, 1))) < tag_order_key((2, (0, 2)))


class TestProtocolRounds:
    def test_counts(self):
        assert protocol_rounds(3) == 2
        assert protocol_rounds(5) == 3
        assert protocol_rounds(8) == 5


class TestMultiplexedDetection:
    @pytest.mark.parametrize("k", [3, 4, 5, 6, 7, 8])
    def test_single_cycle_always_found(self, k):
        """With exactly one k-cycle and nothing else, whatever edge wins
        the rank lottery lies on the cycle, so detection is certain."""
        g = cycle_graph(k)
        for seed in range(5):
            net, run = run_multiplexed(g, k, seed)
            rejecting = [
                v for v, o in run.outputs.items()
                if isinstance(o, DetectionOutcome) and o.rejects
            ]
            assert rejecting, f"k={k} seed={seed}: cycle missed"
            for v in rejecting:
                ids = run.outputs[v].cycle
                verts = [net.vertex_of(i) for i in ids]
                assert_is_cycle(g, verts, k)

    @pytest.mark.parametrize("k", [3, 4, 5, 6, 7])
    def test_one_sided_on_free_graphs(self, k):
        """No node may ever reject when no k-cycle exists — for any seed."""
        graphs = [
            path_graph(10),
            star_graph(8),
            cycle_graph(k + 3),  # contains a cycle but not a k-cycle
        ]
        for g in graphs:
            assert not has_k_cycle(g, k)
            for seed in range(8):
                _, run = run_multiplexed(g, k, seed)
                assert not any(
                    o.rejects for o in run.outputs.values()
                    if isinstance(o, DetectionOutcome)
                ), f"false reject on free graph, k={k}, seed={seed}"

    @pytest.mark.parametrize("k", [3, 4, 5, 6])
    def test_soundness_on_random_graphs(self, k):
        """Multiplexed evidence must always be a real k-cycle, even with
        many concurrent executions colliding."""
        for g in random_graphs(8, n_lo=8, n_hi=12, seed=900 + k):
            if g.m == 0:
                continue
            net, run = run_multiplexed(g, k, seed=k)
            for v, out in run.outputs.items():
                if isinstance(out, DetectionOutcome) and out.rejects:
                    verts = [net.vertex_of(i) for i in out.cycle]
                    assert_is_cycle(g, verts, k)

    def test_many_disjoint_cycles_detected(self):
        """Every edge lies on a cycle, so every rank winner detects."""
        g = disjoint_cycles_graph(5, 5, connect=False)
        for seed in range(5):
            _, run = run_multiplexed(g, 5, seed)
            assert any(
                o.rejects for o in run.outputs.values()
                if isinstance(o, DetectionOutcome)
            )

    def test_isolated_vertices_accept(self):
        from repro.graphs import Graph

        g = Graph(4, [(0, 1), (1, 2), (2, 0)])  # vertex 3 isolated
        _, run = run_multiplexed(g, 3, seed=1)
        assert isinstance(run.outputs[3], DetectionOutcome)
        assert not run.outputs[3].rejects
        # the triangle itself is found
        assert any(o.rejects for o in run.outputs.values())

    def test_reproducible_given_seed(self):
        g = disjoint_cycles_graph(3, 4, connect=True)
        _, r1 = run_multiplexed(g, 4, seed=7)
        _, r2 = run_multiplexed(g, 4, seed=7)
        assert {
            v: (o.rejects, o.cycle) for v, o in r1.outputs.items()
        } == {v: (o.rejects, o.cycle) for v, o in r2.outputs.items()}

    def test_bad_k(self):
        with pytest.raises(ConfigurationError):
            MultiplexedCkProgram(None, 2, 0)  # type: ignore[arg-type]


class TestPriorityRule:
    def test_min_rank_execution_unimpeded(self):
        """Force ranks so a chosen edge is the global minimum; its
        execution must detect exactly like the isolated Algorithm 1."""

        g = disjoint_cycles_graph(4, 6, connect=True)
        # try several seeds; for each, find what the min-rank edge was by
        # checking that *some* cycle is detected (every cycle edge is on a
        # 6-cycle; bridges are not on any cycle).
        hits = 0
        for seed in range(10):
            _, run = run_multiplexed(g, 6, seed)
            if any(
                o.rejects for o in run.outputs.values()
                if isinstance(o, DetectionOutcome)
            ):
                hits += 1
        # bridges are 3 of 27 edges; P[min on bridge] is small, and with a
        # unique minimum on a cycle edge detection is guaranteed.
        assert hits >= 7

    def test_concurrent_executions_never_mix_tags(self):
        """Soundness under collision: run on two disjoint triangles with
        *equal* forced ranks (tie broken by edge IDs) — evidence, if any,
        must still be a genuine triangle."""
        g = disjoint_cycles_graph(2, 3, connect=False)
        net, run = run_multiplexed(g, 3, seed=0)
        for v, out in run.outputs.items():
            if isinstance(out, DetectionOutcome) and out.rejects:
                verts = [net.vertex_of(i) for i in out.cycle]
                assert_is_cycle(g, verts, 3)

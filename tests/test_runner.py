"""Tests for the campaign runner subsystem (registry, run tables,
executor determinism + resume, store, aggregation)."""

import pytest

from repro.errors import ConfigurationError
from repro.graphs.graph import Graph
from repro.runner import (
    ALGORITHM_NAMES,
    CampaignSpec,
    CampaignStore,
    aggregate_records,
    derive_seed,
    execute_row,
    registry,
    run_campaign,
    summarize_store,
)

# Small defaults so that building *every* registered family stays cheap.
SMALL = dict(n=20, m=24, rows=3, cols=3, dim=3, height=2, paths=3,
             path_length=2, width=2, cycles=2, k=4)


def small_spec(name="unit", **overrides):
    base = dict(
        name=name,
        generators=[
            {"family": "gnp", "params": {"n": [16, 24], "p": 0.1}},
            {"family": "cycle", "params": {"n": 12}},
        ],
        ks=[4],
        epsilons=[0.2],
        algorithms=["detect"],
        repetitions=2,
        seed=7,
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestRegistry:
    def test_every_family_round_trips_and_builds(self):
        for name in registry.names():
            spec = registry.get(name)
            assert spec.name == name
            g = spec.build(seed=3, **SMALL)
            assert isinstance(g, Graph)
            assert g.n > 0

    def test_unknown_family(self):
        with pytest.raises(ConfigurationError):
            registry.get("no-such-family")

    def test_seeded_families_reproducible(self):
        for name in registry.names():
            spec = registry.get(name)
            if not spec.seeded:
                continue
            a = spec.build(seed=11, **SMALL)
            b = spec.build(seed=11, **SMALL)
            assert a == b, f"{name} not reproducible under a fixed seed"

    def test_extra_params_ignored_and_defaults_filled(self):
        g = registry.build_graph("cycle", n=9, p=0.5, beta=0.9)
        assert (g.n, g.m) == (9, 9)
        # n falls back to the vocabulary default when omitted
        g = registry.build_graph("cycle")
        assert g.n == registry.PARAMETERS["n"].default

    def test_info_families_expose_certificates(self):
        g, info = registry.build_graph_with_info("eps-far", n=40, k=4, eps=0.1,
                                                 seed=2)
        assert info["certified_farness"] >= 0.1
        g, info = registry.build_graph_with_info("planted-cycle", n=15, k=4,
                                                 p=0.0, seed=2)
        assert len(info["cycle_vertices"]) == 4

    def test_register_rejects_duplicates_and_unknown_params(self):
        with pytest.raises(ConfigurationError):
            registry.register(registry.get("gnp"))
        with pytest.raises(ConfigurationError):
            registry.register(
                registry.GeneratorSpec("fresh", lambda: None, ("bogus",))
            )


class TestRunTable:
    def test_expansion_is_full_cross_product(self):
        spec = small_spec(ks=[3, 4], algorithms=["detect", "naive"])
        table = spec.expand()
        # generators expand to 2 (gnp n-sweep) + 1 (cycle) = 3 cells
        assert len(table) == 3 * 2 * 1 * 2 * 2

    def test_run_ids_unique_and_stable(self):
        a, b = small_spec().expand(), small_spec().expand()
        assert a.row_ids() == b.row_ids()
        assert len(set(a.row_ids())) == len(a)

    def test_seeds_deterministic_and_distinct(self):
        rows = small_spec().expand().rows
        assert len({r.seed for r in rows}) == len(rows)
        again = small_spec().expand().rows
        assert [r.seed for r in rows] == [r.seed for r in again]
        # changing the master seed moves every per-run seed
        moved = small_spec(seed=8).expand().rows
        assert all(x.seed != y.seed for x, y in zip(rows, moved))

    def test_master_seed_is_part_of_row_identity(self):
        # Same grid under a new master seed = new rows: resume must
        # re-execute instead of silently serving stale-seed results.
        a = small_spec(seed=1).expand()
        b = small_spec(seed=2).expand()
        assert set(a.row_ids()).isdisjoint(b.row_ids())

    def test_derive_seed_is_stable_sha_not_hash(self):
        assert derive_seed(0, "x") == derive_seed(0, "x")
        assert derive_seed(0, "x") != derive_seed(1, "x")
        assert 0 <= derive_seed(123, "graph") < 2 ** 63

    def test_json_round_trip(self):
        spec = small_spec()
        clone = CampaignSpec.from_json(spec.to_json())
        assert clone.expand().row_ids() == spec.expand().row_ids()

    def test_from_json_rejects_malformed_payloads(self):
        for text in [
            "[1, 2]",  # not an object
            '{"generators": []}',  # missing name
            '{"name": "x", "generators": [{"params": {}}]}',  # no family
            '{"name": "x", "generators": [{"family": "gnp"}], "ks": 4}',
            '{"name": "x", "generators": [{"family": "gnp", "params": 3}]}',
        ]:
            with pytest.raises(ConfigurationError):
                CampaignSpec.from_json(text)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            small_spec(ks=[2]).expand()
        with pytest.raises(ConfigurationError):
            small_spec(epsilons=[1.5]).expand()
        with pytest.raises(ConfigurationError):
            small_spec(algorithms=["frobnicate"]).expand()
        with pytest.raises(ConfigurationError):
            small_spec(repetitions=0).expand()
        with pytest.raises(ConfigurationError):
            small_spec(generators=[{"family": "nope"}]).expand()


class TestExecutor:
    def test_execute_row_runs_every_algorithm(self):
        # 'monitor' is temporal-only, so give the grid a stream axis; the
        # None entry keeps the static variants in the table too.
        spec = small_spec(
            algorithms=list(ALGORITHM_NAMES),
            streams=[None, "uniform-churn:steps=6"],
            repetitions=1,
        )
        rows = spec.expand()
        assert {row.algorithm for row in rows} == set(ALGORITHM_NAMES)
        for row in rows:
            record = execute_row(row)
            assert record["status"] == "ok"
            assert record["run_id"] == row.run_id
            assert "outcome" in record and record["n"] > 0

    def test_execute_row_turns_failures_into_error_records(self):
        # eps-far with an unattainably large eps raises ConfigurationError
        spec = small_spec(
            generators=[{"family": "eps-far", "params": {"n": 20}}],
            epsilons=[0.9], repetitions=1,
        )
        record = execute_row(spec.expand().rows[0])
        assert record["status"] == "error"
        assert "ConfigurationError" in record["error"]

    def test_serial_rerun_is_byte_identical(self, tmp_path):
        table = small_spec().expand()
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for p in paths:
            run_campaign(table, CampaignStore(p), workers=1)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_parallel_matches_serial_byte_for_byte(self, tmp_path):
        table = small_spec(algorithms=["tester", "detect"]).expand()
        serial, parallel = tmp_path / "serial.jsonl", tmp_path / "par.jsonl"
        r1 = run_campaign(table, CampaignStore(serial), workers=1)
        r2 = run_campaign(table, CampaignStore(parallel), workers=2,
                          chunksize=2)
        assert r1.executed == r2.executed == len(table)
        assert serial.read_bytes() == parallel.read_bytes()

    def test_resume_skips_completed_rows(self, tmp_path):
        table = small_spec().expand()
        store = CampaignStore(tmp_path / "c.jsonl")
        # Pre-populate half the campaign, then resume the full table.
        half = type(table)(table.name, table.rows[: len(table) // 2])
        first = run_campaign(half, store, workers=1)
        assert first.executed == len(half)
        second = run_campaign(table, store, workers=1)
        assert second.skipped == len(half)
        assert second.executed == len(table) - len(half)
        # A third run is a complete no-op and the store has no duplicates.
        third = run_campaign(table, store, workers=1)
        assert third.executed == 0 and third.skipped == len(table)
        assert len(store.completed_ids()) == len(store) == len(table)

    def test_bad_worker_config(self, tmp_path):
        table = small_spec().expand()
        store = CampaignStore(tmp_path / "w.jsonl")
        with pytest.raises(ConfigurationError):
            run_campaign(table, store, workers=0)
        with pytest.raises(ConfigurationError):
            run_campaign(table, store, chunksize=0)


class TestStore:
    def test_append_and_reload(self, tmp_path):
        store = CampaignStore(tmp_path / "s.jsonl")
        assert store.records() == [] and len(store) == 0
        store.append({"run_id": "abc", "x": 1})
        store.append({"run_id": "def", "x": 2})
        assert [r["run_id"] for r in store.records()] == ["abc", "def"]
        assert store.completed_ids() == {"abc", "def"}

    def test_append_requires_run_id(self, tmp_path):
        store = CampaignStore(tmp_path / "s.jsonl")
        with pytest.raises(ConfigurationError):
            store.append({"x": 1})

    def test_corrupt_line_is_reported(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"run_id":"ok"}\nnot json\n')
        with pytest.raises(ConfigurationError):
            CampaignStore(path).records()

    def test_newline_less_but_complete_tail_is_kept(self, tmp_path):
        # A writer killed between the record bytes and the newline left a
        # *complete* record; resume must keep it, not truncate it away.
        table = small_spec().expand()
        store = CampaignStore(tmp_path / "clipped.jsonl")
        half = type(table)(table.name, table.rows[: len(table) // 2])
        run_campaign(half, store, workers=1)
        data = store.path.read_bytes()
        store.path.write_bytes(data[:-1])  # strip only the final newline
        clipped = CampaignStore(store.path)
        assert clipped.completed_ids() == set(half.row_ids())
        # Resume appends the remaining rows; the repair must restore the
        # newline rather than truncate the clipped (complete) record.
        report = run_campaign(table, clipped, workers=1)
        assert report.skipped == len(half)
        assert report.executed == len(table) - len(half)
        assert CampaignStore(store.path).completed_ids() == set(table.row_ids())

    def test_torn_final_line_survives_crashed_writer(self, tmp_path, capsys):
        # A writer killed mid-append leaves a final line with no newline;
        # resume must drop it and re-execute only that row.
        table = small_spec().expand()
        store = CampaignStore(tmp_path / "torn.jsonl")
        run_campaign(table, store, workers=1)
        data = store.path.read_bytes()
        store.path.write_bytes(data[:-25])  # tear the last record mid-JSON
        torn = CampaignStore(store.path)
        assert len(torn.completed_ids()) == len(table) - 1
        report = run_campaign(table, torn, workers=1)
        assert report.executed == 1 and report.skipped == len(table) - 1
        # The repaired store parses cleanly and covers the full table.
        clean = CampaignStore(store.path)
        assert clean.completed_ids() == set(table.row_ids())


class TestAggregate:
    def test_summary_groups_and_rates(self, tmp_path):
        table = small_spec(algorithms=["detect"]).expand()
        store = CampaignStore(tmp_path / "agg.jsonl")
        run_campaign(table, store, workers=1)
        summary = summarize_store(store)
        assert summary.rows, "summary must not be empty"
        total = sum(row["runs"] for row in summary.rows)
        assert total == len(table)
        for row in summary.rows:
            assert 0.0 <= row["lo"] <= row["rate"] <= row["hi"] <= 1.0
        # The cycle family always contains its own C12: never a C4 hit.
        cyc = [r for r in summary.rows if r["generator"] == "cycle"]
        assert cyc and cyc[0]["rate"] == 0.0
        rendered = summary.render()
        assert "campaign summary" in rendered and "95% CI" in rendered

    def test_error_records_counted_not_aggregated(self):
        records = [
            {"run_id": "1", "generator": "g", "params": {}, "k": 4,
             "eps": 0.1, "algorithm": "detect", "status": "ok",
             "outcome": {"detected": True}},
            {"run_id": "2", "generator": "g", "params": {}, "k": 4,
             "eps": 0.1, "algorithm": "detect", "status": "error",
             "error": "boom"},
        ]
        summary = aggregate_records(records)
        assert len(summary.rows) == 1
        assert summary.rows[0]["errors"] == 1
        assert summary.rows[0]["rate"] == 1.0  # over the single ok record


@pytest.mark.slow
def test_full_grid_campaign_end_to_end(tmp_path):
    """Opt-in (--runslow): a larger factor-crossed campaign in parallel."""
    spec = CampaignSpec(
        name="full",
        generators=[
            {"family": "gnp", "params": {"n": [32, 48, 64], "p": 0.08}},
            {"family": "ba", "params": {"n": [32, 48], "attach": 2}},
            {"family": "ws", "params": {"n": [32, 48], "d": 4, "beta": 0.2}},
            {"family": "eps-far", "params": {"n": 60}},
        ],
        ks=[4, 5],
        epsilons=[0.15],
        algorithms=["tester", "detect", "naive"],
        repetitions=2,
        seed=1,
    )
    table = spec.expand()
    assert len(table) == 8 * 2 * 1 * 3 * 2
    store = CampaignStore(tmp_path / "full.jsonl")
    report = run_campaign(table, store, workers=2, chunksize=4)
    assert report.executed == len(table)
    assert run_campaign(table, store, workers=2).executed == 0
    assert sum(r["runs"] for r in summarize_store(store).rows) == len(table)


def _double(x):
    return 2 * x


class TestPoolScheduling:
    """Persistent pools and slot-weighted co-scheduling (executor layer)."""

    def test_row_slots_by_engine(self):
        import dataclasses

        from repro.congest.engine.sharded import default_shard_count
        from repro.runner.executor import row_slots

        row = small_spec().expand().rows[0]
        cases = {
            "reference": 1,
            "fast": 1,
            "fast:chunk=4": 1,
            "sharded:3": 3,
            "sharded:3,chunk=4": 3,
            "sharded": default_shard_count(),
            "not-an-engine": 1,  # fails later, as an error record
        }
        for engine, slots in cases.items():
            probe = dataclasses.replace(row, engine=engine)
            assert row_slots(probe) == slots, engine

    def test_weighted_map_validation(self):
        from repro.runner.executor import ordered_parallel_map

        with pytest.raises(ConfigurationError):
            list(ordered_parallel_map(
                _double, [1, 2], workers=2, chunksize=2, weights=[1, 1]
            ))
        with pytest.raises(ConfigurationError):
            list(ordered_parallel_map(
                _double, [1, 2], workers=2, weights=[1]
            ))

    def test_weighted_map_preserves_submission_order(self):
        from repro.runner.executor import ordered_parallel_map

        items = list(range(10))
        # Oversized weights are clamped to the worker count.
        weights = [5, 1, 2, 1, 1, 3, 1, 2, 1, 1]
        out = list(ordered_parallel_map(
            _double, items, workers=2, weights=weights
        ))
        assert out == [_double(x) for x in items]

    def test_persistent_pool_reuse_and_shutdown(self):
        from repro.runner.executor import (
            _PERSISTENT_POOLS,
            _persistent_pool,
            ordered_parallel_map,
            shutdown_persistent_pools,
        )

        shutdown_persistent_pools()
        assert list(ordered_parallel_map(_double, [1, 2, 3], workers=2)) \
            == [2, 4, 6]
        pool = _PERSISTENT_POOLS.get(2)
        assert pool is not None
        list(ordered_parallel_map(_double, [4], workers=2))
        assert _persistent_pool(2) is pool  # warm pool reused
        shutdown_persistent_pools()
        assert not _PERSISTENT_POOLS
        assert _persistent_pool(2) is not pool
        shutdown_persistent_pools()

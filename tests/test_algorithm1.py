"""Tests for Algorithm 1 (Phase 2): exact completeness and soundness.

The paper's strongest claim about Phase 2 (§1.2): it is *deterministic* —
"even if there is just a single k-cycle passing through e, that cycle will
be detected" — and it never rejects a graph with no k-cycle through e.
We verify both directions against the exact centralized oracle, across
graph families, all k in 3..10, and adversarial ID assignments.
"""

import pytest

from helpers import assert_is_cycle, random_graphs
from repro.congest import (
    IdentityIds,
    Network,
    RandomPermutationIds,
    ReverseIds,
    SpreadIds,
)
from repro.core import (
    ExplicitPruner,
    detect_cycle_through_edge,
    find_detection_evidence,
    phase2_rounds,
    process_phase2_round,
)
from repro.core.pruning import HittingSetPruner
from repro.errors import ConfigurationError
from repro.graphs import (
    blowup_graph,
    complete_graph,
    cycle_graph,
    figure1_graph,
    flower_graph,
    grid_graph,
    has_cycle_through_edge,
    path_graph,
    planted_cycle_graph,
    theta_graph,
)


class TestRounds:
    def test_phase2_rounds(self):
        assert phase2_rounds(3) == 1
        assert phase2_rounds(4) == 2
        assert phase2_rounds(5) == 2
        assert phase2_rounds(9) == 4
        assert phase2_rounds(10) == 5

    def test_bad_k(self):
        with pytest.raises(ConfigurationError):
            phase2_rounds(2)
        with pytest.raises(ConfigurationError):
            detect_cycle_through_edge(cycle_graph(3), (0, 1), 2)

    def test_missing_edge_rejected(self):
        with pytest.raises(ConfigurationError):
            detect_cycle_through_edge(path_graph(4), (0, 2), 3)

    def test_round_count_constant_in_n(self):
        """Theorem-1 ingredient: rounds depend only on k."""
        for n in (10, 50, 200):
            g = cycle_graph(n)
            det = detect_cycle_through_edge(g, (0, 1), 7)
            assert det.run.trace.num_rounds == phase2_rounds(7)


class TestCanonicalExamples:
    def test_figure1_c5(self):
        """The paper's Fig. 1: z detects the C5 (u, x, z, y, v)."""
        g = figure1_graph()
        det = detect_cycle_through_edge(g, (0, 1), 5)
        assert det.detected
        # z (vertex 4) is the antipodal node and must be a rejector.
        assert 4 in det.rejecting_vertices
        assert_is_cycle(g, det.any_cycle_ids(), 5)

    @pytest.mark.parametrize("k", range(3, 13))
    def test_pure_cycle_every_k(self, k):
        g = cycle_graph(k)
        det = detect_cycle_through_edge(g, (0, 1), k)
        assert det.detected
        assert_is_cycle(g, det.any_cycle_ids(), k)

    @pytest.mark.parametrize("k", range(3, 11))
    def test_wrong_length_never_fires(self, k):
        """1-sidedness: C_n contains no C_k for k != n."""
        n = 13
        g = cycle_graph(n)
        det = detect_cycle_through_edge(g, (0, 1), k)
        assert not det.detected

    @pytest.mark.parametrize("k", [4, 5, 6, 7, 8])
    def test_flower_many_witnesses(self, k):
        """Many k-cycles share the probe edge; pruning must keep one."""
        g = flower_graph(6, k)
        det = detect_cycle_through_edge(g, (0, 1), k)
        assert det.detected
        assert_is_cycle(g, det.any_cycle_ids(), k)

    @pytest.mark.parametrize("k", [6, 7, 8, 9])
    def test_blowup_high_multiplicity(self, k):
        g = blowup_graph(5, k)
        det = detect_cycle_through_edge(g, (0, 1), k)
        assert det.detected
        assert_is_cycle(g, det.any_cycle_ids(), k)

    def test_theta_even_cycle(self):
        g = theta_graph(3, 3)  # 3 paths of length 3 => C6s, no C6 via hubs?
        e = (0, 2)
        assert has_cycle_through_edge(g, e, 6)
        det = detect_cycle_through_edge(g, e, 6)
        assert det.detected

    def test_grid_c4(self):
        g = grid_graph(3, 3)
        det = detect_cycle_through_edge(g, (0, 1), 4)
        assert det.detected
        det5 = detect_cycle_through_edge(g, (0, 1), 5)
        assert not det5.detected  # bipartite


class TestDifferentialAgainstOracle:
    """Exact match with ground truth on random graphs."""

    @pytest.mark.parametrize("k", [3, 4, 5, 6, 7, 8])
    def test_random_graphs(self, k):
        for g in random_graphs(12, seed=100 + k):
            if g.m == 0:
                continue
            for e in list(g.edges())[:6]:
                expected = has_cycle_through_edge(g, e, k)
                det = detect_cycle_through_edge(g, e, k)
                assert det.detected == expected, (g.edge_list(), e, k)
                if det.detected:
                    ids = det.any_cycle_ids()
                    assert_is_cycle(g, ids, k)  # identity IDs = vertices
                    # The probe edge must be ON the witnessed cycle.
                    edges_on_cycle = {
                        tuple(sorted((ids[i], ids[(i + 1) % k])))
                        for i in range(k)
                    }
                    assert tuple(sorted(e)) in edges_on_cycle

    def test_explicit_pruner_agrees(self):
        """End-to-end equality of the two pruners on whole executions."""
        for g in random_graphs(6, n_lo=6, n_hi=9, seed=77):
            if g.m == 0:
                continue
            for e in list(g.edges())[:4]:
                for k in (4, 5, 6):
                    fast = detect_cycle_through_edge(
                        g, e, k, pruner=HittingSetPruner()
                    )
                    slow = detect_cycle_through_edge(g, e, k, pruner=ExplicitPruner())
                    assert fast.detected == slow.detected


class TestIdAssignmentInvariance:
    """Correctness must not depend on which IDs nodes carry."""

    @pytest.mark.parametrize(
        "assigner",
        [IdentityIds(), ReverseIds(), SpreadIds(), RandomPermutationIds(seed=5)],
        ids=["identity", "reverse", "spread", "random"],
    )
    @pytest.mark.parametrize("k", [3, 4, 5, 6, 7])
    def test_invariance(self, assigner, k):
        for g in random_graphs(5, seed=50 + k):
            if g.m == 0:
                continue
            net = Network(g, assigner)
            for e in list(g.edges())[:4]:
                expected = has_cycle_through_edge(g, e, k)
                det = detect_cycle_through_edge(g, e, k, network=net)
                assert det.detected == expected
                if det.detected:
                    ids = det.any_cycle_ids()
                    verts = [net.vertex_of(i) for i in ids]
                    assert_is_cycle(g, verts, k)


class TestEvidence:
    def test_evidence_is_real_cycle_through_edge(self):
        g, cyc = planted_cycle_graph(30, 7, seed=3, extra_edge_prob=0.05)
        e = (cyc[0], cyc[1])
        det = detect_cycle_through_edge(g, e, 7)
        assert det.detected
        ids = det.any_cycle_ids()
        assert_is_cycle(g, ids, 7)

    def test_all_rejectors_carry_evidence(self):
        g = complete_graph(7)
        det = detect_cycle_through_edge(g, (0, 1), 5)
        for v in det.rejecting_vertices:
            out = det.outcomes[v]
            assert out.cycle is not None
            assert_is_cycle(g, out.cycle, 5)

    def test_accepting_nodes_have_no_evidence(self):
        g = path_graph(6)
        det = detect_cycle_through_edge(g, (0, 1), 4)
        assert all(o.cycle is None for o in det.outcomes.values())


class TestUnitPieces:
    def test_process_round_empty(self):
        assert process_phase2_round(1, [], 7, 2, HittingSetPruner()) == []

    def test_process_round_filters_own_id(self):
        out = process_phase2_round(5, [(5,)], 7, 2, HittingSetPruner())
        assert out == []

    def test_process_round_appends(self):
        out = process_phase2_round(9, [(1,)], 7, 2, HittingSetPruner())
        assert out == [(1, 9)]

    def test_detection_odd_needs_two_disjoint(self):
        # k=5: two length-2 sequences + me, all distinct => cycle
        assert find_detection_evidence(10, 5, [], [(1, 2), (3, 4)]) == (
            1, 2, 10, 4, 3,
        )
        # overlapping sequences: no
        assert find_detection_evidence(10, 5, [], [(1, 2), (2, 3)]) is None
        # sequence containing me: no
        assert find_detection_evidence(10, 5, [], [(1, 10), (3, 4)]) is None

    def test_detection_even_pairs_own_with_received(self):
        # k=4: own (1, 10) + received (2, 3)
        assert find_detection_evidence(10, 4, [(1, 10)], [(2, 3)]) == (
            1, 10, 3, 2,
        )
        # received containing me cannot fire
        assert find_detection_evidence(10, 4, [(1, 10)], [(2, 10)]) is None
        # two received are never paired for even k
        assert find_detection_evidence(10, 4, [], [(1, 2), (3, 4)]) is None

    def test_detection_no_material(self):
        assert find_detection_evidence(1, 5, [], []) is None


class TestDeterminism:
    def test_repeated_runs_identical(self):
        g = flower_graph(5, 6)
        a = detect_cycle_through_edge(g, (0, 1), 6)
        b = detect_cycle_through_edge(g, (0, 1), 6)
        assert a.detected == b.detected
        assert a.any_cycle_ids() == b.any_cycle_ids()
        assert a.run.trace.summary() == b.run.trace.summary()

"""Sharded engine: spec parsing, registry error paths, equivalence,
resource lifecycle and telemetry.

The full cross-engine stress grid lives in ``test_engines.py`` (and runs
with the sharded backend included in CI's engine-matrix job); the
equivalence tests here are small and targeted so the file stays fast.
"""

import pytest

import repro.congest.engine as engine_mod
from repro.cli import main
from repro.congest.engine import (
    available_engines,
    create_engine,
    ensure_engine_available,
    parse_engine_spec,
)
from repro.congest.engine.sharded import (
    ShardedEngine,
    _fork_available,
    default_shard_count,
)
from repro.congest.network import Network
from repro.errors import ConfigurationError, EngineUnavailableError
from repro.graphs import Graph, cycle_graph, planted_epsilon_far_graph
from repro.obs import Telemetry
from repro.testing import compare_engines_once

needs_fork = pytest.mark.skipif(
    not _fork_available(), reason="fork start method unavailable"
)


class TestSpecParsing:
    def test_plain_names_pass_through(self):
        for name in ("reference", "fast", "sharded"):
            assert parse_engine_spec(name) == (name, {})

    def test_shard_count_suffix(self):
        assert parse_engine_spec("sharded:4") == ("sharded", {"shards": 4})
        assert parse_engine_spec("sharded:1") == ("sharded", {"shards": 1})

    def test_unknown_name_rejected_before_option_parsing(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            parse_engine_spec("warp:4")

    def test_options_on_optionless_engines(self):
        with pytest.raises(ConfigurationError, match="takes no shard count"):
            parse_engine_spec("fast:4")
        with pytest.raises(ConfigurationError, match="takes no options"):
            parse_engine_spec("reference:2")
        with pytest.raises(ConfigurationError, match="takes no options"):
            parse_engine_spec("reference:chunk=2")

    def test_bad_shard_counts(self):
        with pytest.raises(ConfigurationError, match="bad option 'four'"):
            parse_engine_spec("sharded:four")
        with pytest.raises(ConfigurationError, match="shards must be >= 1"):
            parse_engine_spec("sharded:0")
        with pytest.raises(ConfigurationError, match="shards must be >= 1"):
            parse_engine_spec("sharded:-2")

    def test_spec_and_kwarg_overlap_rejected(self):
        net = Network(cycle_graph(6))
        with pytest.raises(ConfigurationError, match="given both"):
            create_engine("sharded:2", net, shards=3)

    def test_default_shard_count_positive(self):
        assert default_shard_count() >= 1


class TestRegistryErrorPaths:
    def test_sharded_listed_and_available(self):
        assert "sharded" in available_engines()
        ensure_engine_available("sharded:8")  # availability ignores count

    def test_unknown_engine_through_cli_is_usage_error(self):
        with pytest.raises(SystemExit):
            main(["test", "--generator", "cycle", "--n", "8", "--k", "4",
                  "--engine", "bogus"])

    def test_bad_shards_through_cli(self):
        with pytest.raises(SystemExit, match="shards must be >= 1"):
            main(["test", "--generator", "cycle", "--n", "8", "--k", "4",
                  "--engine", "sharded", "--shards", "0"])

    def test_shards_with_other_engine_through_cli(self):
        with pytest.raises(SystemExit, match="only applies to the sharded"):
            main(["test", "--generator", "cycle", "--n", "8", "--k", "4",
                  "--engine", "fast", "--shards", "2"])

    def test_shards_given_twice_through_cli(self):
        with pytest.raises(SystemExit, match="twice"):
            main(["test", "--generator", "cycle", "--n", "8", "--k", "4",
                  "--engine", "sharded:2", "--shards", "3"])

    def test_missing_shared_memory_raises_clean_engine_error(
        self, monkeypatch
    ):
        monkeypatch.setattr(
            engine_mod, "_shared_memory_missing",
            lambda: "No module named '_posixshmem'",
        )
        with pytest.raises(EngineUnavailableError, match="shared_memory"):
            ensure_engine_available("sharded")
        # fast and reference are unaffected
        ensure_engine_available("fast")
        ensure_engine_available("reference")
        assert available_engines() == ("reference", "fast")
        # and the CLI surfaces it as a clean one-line error, not a trace
        with pytest.raises(SystemExit, match="error: .*shared_memory"):
            main(["test", "--generator", "cycle", "--n", "8", "--k", "4",
                  "--engine", "sharded"])

    def test_missing_numpy_raises_clean_engine_error(self, monkeypatch):
        monkeypatch.setattr(
            engine_mod, "_numpy_missing", lambda: "No module named 'numpy'"
        )
        with pytest.raises(EngineUnavailableError, match="pip install"):
            ensure_engine_available("sharded")
        with pytest.raises(SystemExit, match="error: .*numpy"):
            main(["test", "--generator", "cycle", "--n", "8", "--k", "4",
                  "--engine", "sharded:2"])

    def test_constructor_rejects_bad_shards(self):
        net = Network(cycle_graph(6))
        with pytest.raises(ConfigurationError, match="shards must be >= 1"):
            ShardedEngine(net, shards=0)

    def test_pool_without_fork(self, monkeypatch):
        import repro.congest.engine.sharded as sharded_mod

        monkeypatch.setattr(sharded_mod, "_fork_available", lambda: False)
        net = Network(cycle_graph(6))
        with pytest.raises(EngineUnavailableError, match="fork"):
            ShardedEngine(net, shards=2, use_pool=True)
        # auto mode degrades to inline instead of failing
        eng = ShardedEngine(net, shards=2)
        assert not eng.uses_pool
        eng.close()


class TestEquivalence:
    def test_small_grid_all_backends(self):
        g, _ = planted_epsilon_far_graph(48, 5, 0.15, seed=3)
        for seed in (0, 1):
            mismatches = compare_engines_once(
                g, 5, seed,
                engines=("reference", "fast", "sharded:2", "sharded:3"),
            )
            assert not mismatches, mismatches

    def test_shard_count_exceeding_n_is_clamped(self):
        g = cycle_graph(5)
        eng = ShardedEngine(Network(g), shards=64)
        assert eng.shards <= g.n
        run = eng.run_tester_repetition(5, 7)
        assert any(o.rejects for o in run.outputs.values())
        eng.close()

    def test_edgeless_graph(self):
        g = Graph(4)
        with ShardedEngine(Network(g), shards=2) as eng:
            run = eng.run_tester_repetition(4, 0)
        assert all(not o.rejects for o in run.outputs.values())

    @needs_fork
    def test_pooled_matches_inline(self):
        g, _ = planted_epsilon_far_graph(60, 4, 0.1, seed=5)
        net = Network(g)
        results = {}
        for pooled in (False, True):
            with ShardedEngine(net, shards=3, use_pool=pooled) as eng:
                run = eng.run_tester_repetition(4, 11)
                results[pooled] = (
                    sorted(v for v, o in run.outputs.items() if o.rejects),
                    run.trace.total_messages,
                    run.trace.total_bits,
                    run.trace.max_message_bits,
                )
        assert results[False] == results[True]


class TestResourceLifecycle:
    def test_close_is_idempotent(self):
        eng = ShardedEngine(Network(cycle_graph(8)), shards=2)
        eng.run_tester_repetition(4, 3)
        eng.close()
        eng.close()  # second close must be a no-op, not a crash

    def test_context_manager_releases_shared_memory(self):
        from multiprocessing import shared_memory

        with ShardedEngine(Network(cycle_graph(8)), shards=2) as eng:
            name = eng._shm.name
            eng.run_tester_repetition(4, 3)
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestShardTelemetry:
    def test_shard_metric_families_registered(self):
        tel = Telemetry()
        g, _ = planted_epsilon_far_graph(48, 5, 0.15, seed=3)
        with ShardedEngine(Network(g), shards=2, telemetry=tel) as eng:
            eng.run_tester_repetition(5, 1)
        snap = tel.registry.snapshot()
        assert snap["repro_shard_count"]["samples"][""] == 2
        assert snap["repro_shard_shm_bytes"]["samples"][""] > 0
        assert sum(snap["repro_shard_dispatch_total"]["samples"].values()) > 0
        # one histogram child per shard index
        hist = snap["repro_shard_round_seconds"]["samples"]
        assert {"shard=0", "shard=1"} <= set(hist)

"""Shared fixtures for the test suite (helpers live in helpers.py)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import cycle_graph, figure1_graph


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def fig1():
    return figure1_graph()


@pytest.fixture
def c5():
    return cycle_graph(5)


@pytest.fixture
def c6():
    return cycle_graph(6)

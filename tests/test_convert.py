"""Tests for networkx interoperability."""

import networkx as nx
import pytest

from repro.errors import GraphError
from repro.graphs import Graph, cycle_graph, from_networkx, to_networkx


class TestToNetworkx:
    def test_roundtrip_structure(self):
        g = cycle_graph(6)
        nxg = to_networkx(g)
        assert nxg.number_of_nodes() == 6
        assert nxg.number_of_edges() == 6
        assert nx.is_connected(nxg)

    def test_isolated_vertices_kept(self):
        g = Graph(4, [(0, 1)])
        nxg = to_networkx(g)
        assert nxg.number_of_nodes() == 4


class TestFromNetworkx:
    def test_basic(self):
        nxg = nx.cycle_graph(5)
        g, index = from_networkx(nxg)
        assert g.n == 5
        assert g.m == 5
        assert set(index.keys()) == set(range(5))

    def test_string_labels(self):
        nxg = nx.Graph([("a", "b"), ("b", "c")])
        g, index = from_networkx(nxg)
        assert g.n == 3
        assert g.has_edge(index["a"], index["b"])
        assert g.has_edge(index["b"], index["c"])
        assert not g.has_edge(index["a"], index["c"])

    def test_deterministic_labelling(self):
        nxg = nx.Graph([("x", "y"), ("y", "z")])
        _, i1 = from_networkx(nxg)
        _, i2 = from_networkx(nx.Graph([("y", "z"), ("x", "y")]))
        assert i1 == i2

    def test_rejects_directed(self):
        with pytest.raises(GraphError):
            from_networkx(nx.DiGraph([(0, 1)]))

    def test_rejects_multigraph(self):
        with pytest.raises(GraphError):
            from_networkx(nx.MultiGraph([(0, 1), (0, 1)]))

    def test_rejects_self_loop(self):
        nxg = nx.Graph()
        nxg.add_edge(0, 0)
        with pytest.raises(GraphError):
            from_networkx(nxg)

    def test_full_roundtrip(self):
        g = cycle_graph(7)
        g2, index = from_networkx(to_networkx(g))
        # identity labelling for integer nodes 0..6 sorted by repr:
        # repr order of ints 0..6 is lexicographic '0'..'6' == numeric here
        assert g2 == g

"""Concurrency tests: single-writer ordering, isolation, LRU eviction.

These hammer a real server from many OS threads (each thread owns a
blocking client, the server multiplexes them onto its event loop), so
they exercise the actual contention path: the per-session asyncio lock,
the LRU session table, and the snapshot consistency guarantee.
"""

import threading

import pytest

from repro.dynamic import CkMonitor, DynamicGraph
from repro.graphs import io as graph_io
from repro.graphs.graph import Graph
from repro.service import ServerHarness, ServiceClientError


def run_threads(workers):
    """Run the worker callables concurrently; re-raise the first error."""
    errors = []

    def wrap(fn):
        try:
            fn()
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=wrap, args=(fn,)) for fn in workers
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    if errors:
        raise errors[0]


class TestSingleWriterOrdering:
    def test_hammered_session_is_serializable(self):
        """Many clients, one session: the accepted mutations form one
        serial order — versions are handed out exactly once, and the
        final state equals a serial replay of the logged order."""
        n_threads, per_thread = 6, 8
        with ServerHarness(max_sessions=4) as harness:
            client0 = harness.client()
            # Enough vertices that every thread toggles its own edge.
            client0.create_session(
                name="arena", k=3, n=2 * n_threads,
                tester_repetitions=1,
            )
            seen_versions = []
            lock = threading.Lock()

            def worker(index):
                client = harness.client()
                u, v = 2 * index, 2 * index + 1
                for step in range(per_thread):
                    op = "+" if step % 2 == 0 else "-"
                    result = client.mutate("arena", f"{op} {u} {v}\n")
                    with lock:
                        seen_versions.append(result["version"])

            run_threads([
                (lambda i=i: worker(i)) for i in range(n_threads)
            ])

            total = n_threads * per_thread
            # Every mutation observed a distinct post-state version, and
            # together they cover 1..total: a serializable interleaving.
            assert len(seen_versions) == total
            assert sorted(seen_versions) == list(range(1, total + 1))

            snap = client0.snapshot("arena")
            assert snap["version"] == total
            # Serial replay of the accepted order reproduces the state.
            replay = DynamicGraph(Graph(2 * n_threads))
            for mutation in graph_io.loads_stream(snap["log"]):
                replay.apply(mutation)
            assert replay.content_hash() == snap["content_hash"]

    def test_snapshots_race_mutations(self):
        """Concurrent snapshots while a writer streams mutations: every
        snapshot is internally consistent (hash matches its graph)."""
        with ServerHarness(max_sessions=2) as harness:
            writer_client = harness.client()
            writer_client.create_session(
                name="race", k=3, n=4, tester_repetitions=1
            )

            def writer():
                for _ in range(40):
                    writer_client.mutate("race", "+v\n")

            def snapshotter():
                client = harness.client()
                for _ in range(15):
                    snap = client.snapshot("race")
                    g = graph_io.loads(snap["graph"])
                    assert g.content_hash() == snap["content_hash"]
                    assert g.n == 4 + snap["version"]

            run_threads([writer, snapshotter, snapshotter])


class TestSessionIsolation:
    def test_parallel_sessions_stay_independent(self):
        n_sessions, steps = 5, 12
        with ServerHarness(max_sessions=n_sessions) as harness:

            def worker(index):
                client = harness.client()
                name = f"iso-{index}"
                client.create_session(
                    name=name, k=3, n=6, seed=index,
                    tester_repetitions=1,
                )
                for step in range(steps):
                    # Add an edge on even steps, remove it on the next
                    # odd step, so every mutation is state-valid.
                    u = (index + step // 2) % 5
                    op = "+" if step % 2 == 0 else "-"
                    client.mutate(name, f"{op} {u} 5\n")
                snap = client.snapshot(name)
                # Offline replay of just this session's log agrees.
                monitor = CkMonitor(
                    Graph(6), 3, seed=index, tester_repetitions=1
                )
                monitor.run_stream(graph_io.loads_stream(snap["log"]))
                assert snap["version"] == steps
                assert snap["content_hash"] == monitor.dynamic.content_hash()
                assert snap["accepted"] == monitor.accepted

            run_threads([
                (lambda i=i: worker(i)) for i in range(n_sessions)
            ])


class TestLruEviction:
    def test_count_stays_bounded_and_lru_goes_first(self):
        with ServerHarness(max_sessions=4) as harness:
            client = harness.client()
            for i in range(4):
                client.create_session(name=f"e{i}", k=3, n=4)
            assert client.list_sessions()["sessions"] == [
                "e0", "e1", "e2", "e3"
            ]
            # Touch e0 so e1 becomes least recently used.
            client.verdict("e0")
            client.create_session(name="e4", k=3, n=4)
            listing = client.list_sessions()
            assert listing["open"] == 4
            assert "e1" not in listing["sessions"]
            assert "e0" in listing["sessions"]
            # The evicted name is now unknown.
            with pytest.raises(ServiceClientError) as exc_info:
                client.verdict("e1")
            assert exc_info.value.status == 404

    def test_bound_holds_under_concurrent_creates(self):
        max_sessions = 4
        with ServerHarness(max_sessions=max_sessions) as harness:

            def creator(index):
                client = harness.client()
                for j in range(6):
                    client.create_session(
                        name=f"c{index}-{j}", k=3, n=4
                    )
                    assert (
                        client.list_sessions()["open"] <= max_sessions
                    )

            run_threads([
                (lambda i=i: creator(i)) for i in range(4)
            ])
            assert harness.client().list_sessions()["open"] <= max_sessions

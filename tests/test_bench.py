"""Tests for the benchmark harness core: registry, artifacts, environment
fingerprint, and the regression-detection logic (all on synthetic or
seconds-sized data — no real heavy benchmarks run in tier-1)."""

import json

import pytest

from repro.bench import (
    ArtifactError,
    artifact_path,
    compare_artifacts,
    compare_dirs,
    environment_fingerprint,
    read_artifact,
    registry,
    run_suite,
    validate_artifact,
    write_artifact,
)
from repro.bench.compare import DEFAULT_MIN_WALL
from repro.bench.registry import BenchmarkSpec, benchmark, case_id
from repro.bench.runner import SUITE_REPEATS, execute_benchmark
from repro.errors import ConfigurationError
from repro.testing import synthetic_bench_artifact


# ---------------------------------------------------------------------------
# registry resolution
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_default_specs_register(self):
        assert len(registry.names()) >= 14
        # The acceptance bar: at least 8 areas in the smoke suite.
        assert len(registry.areas()) >= 8

    def test_every_spec_declares_smoke(self):
        for name in registry.names():
            assert registry.get(name).cases_for("smoke"), name

    def test_suite_fallback_chain(self):
        spec = BenchmarkSpec(
            name="x.y", area="x", func=lambda c, s: {},
            summary="", suites={"smoke": ({"n": 1},)},
        )
        # full -> default -> smoke when larger grids are not declared.
        assert spec.cases_for("full") == ({"n": 1},)
        assert spec.cases_for("default") == ({"n": 1},)

    def test_declared_suite_wins_over_fallback(self):
        spec = BenchmarkSpec(
            name="x.y", area="x", func=lambda c, s: {}, summary="",
            suites={"smoke": ({"n": 1},), "full": ({"n": 9},)},
        )
        assert spec.cases_for("default") == ({"n": 1},)
        assert spec.cases_for("full") == ({"n": 9},)

    def test_unknown_suite_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown suite"):
            registry.specs_for("humongous")
        spec = registry.get(registry.names()[0])
        with pytest.raises(ConfigurationError, match="unknown suite"):
            spec.cases_for("humongous")

    def test_unknown_benchmark_and_area_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown benchmark"):
            registry.get("nope.nothing")
        with pytest.raises(ConfigurationError, match="unknown benchmark area"):
            registry.specs_for("smoke", ["not-an-area"])

    def test_area_filter_selects_only_that_area(self):
        specs = registry.specs_for("smoke", ["phase1"])
        assert specs
        assert {s.area for s in specs} == {"phase1"}

    def test_duplicate_registration_rejected(self):
        @benchmark("tmparea", smoke=[{}])
        def once(case, seed):
            return {}

        try:
            with pytest.raises(ConfigurationError, match="duplicate"):
                benchmark("tmparea", smoke=[{}])(once)
        finally:
            registry._REGISTRY.pop("tmparea.once")

    def test_registration_requires_smoke_grid(self):
        with pytest.raises(ConfigurationError, match="smoke grid"):
            @benchmark("tmparea", default=[{}])
            def no_smoke(case, seed):
                return {}

    def test_case_id_is_order_independent_content_hash(self):
        assert case_id({"a": 1, "b": 2}) == case_id({"b": 2, "a": 1})
        assert case_id({"a": 1}) != case_id({"a": 2})


# ---------------------------------------------------------------------------
# artifact schema round-trip
# ---------------------------------------------------------------------------
class TestArtifacts:
    def test_round_trip(self, tmp_path):
        artifact = synthetic_bench_artifact("rt")
        path = write_artifact(tmp_path, artifact)
        assert path == artifact_path(tmp_path, "rt")
        assert path.name == "BENCH_rt.json"
        assert read_artifact(path) == artifact

    def test_schema_version_enforced(self, tmp_path):
        artifact = synthetic_bench_artifact("rt")
        artifact["schema"] = "repro-bench/999"
        with pytest.raises(ArtifactError, match="schema"):
            validate_artifact(artifact)

    def test_empty_results_rejected(self):
        artifact = synthetic_bench_artifact("rt")
        artifact["results"] = []
        with pytest.raises(ArtifactError, match="non-empty"):
            validate_artifact(artifact)

    def test_duplicate_result_keys_rejected(self):
        artifact = synthetic_bench_artifact("rt")
        artifact["results"].append(dict(artifact["results"][0]))
        with pytest.raises(ArtifactError, match="duplicate"):
            validate_artifact(artifact)

    def test_ok_record_requires_wall_fields(self):
        artifact = synthetic_bench_artifact("rt")
        del artifact["results"][0]["wall_min"]
        with pytest.raises(ArtifactError, match="wall_min"):
            validate_artifact(artifact)

    def test_error_record_requires_message(self):
        artifact = synthetic_bench_artifact("rt")
        artifact["results"][0]["status"] = "error"
        with pytest.raises(ArtifactError, match="error"):
            validate_artifact(artifact)

    def test_non_scalar_metric_rejected(self):
        artifact = synthetic_bench_artifact("rt")
        artifact["results"][0]["metrics"]["bad"] = [1, 2]
        with pytest.raises(ArtifactError, match="JSON scalar"):
            validate_artifact(artifact)

    def test_area_mismatch_rejected(self):
        artifact = synthetic_bench_artifact("rt")
        artifact["results"][0]["area"] = "other"
        with pytest.raises(ArtifactError, match="does not match"):
            validate_artifact(artifact)

    def test_corrupt_json_rejected(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("{not json")
        with pytest.raises(ArtifactError, match="invalid JSON"):
            read_artifact(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ArtifactError, match="no benchmark artifact"):
            read_artifact(tmp_path / "BENCH_x.json")


# ---------------------------------------------------------------------------
# environment fingerprint
# ---------------------------------------------------------------------------
class TestEnvironment:
    def test_fingerprint_shape(self):
        env = environment_fingerprint()
        for key in ("repro_version", "python", "numpy", "platform",
                    "cpu_count", "git_sha", "timestamp"):
            assert key in env
        assert isinstance(env["cpu_count"], int) and env["cpu_count"] >= 1
        assert env["python"].count(".") == 2

    def test_fingerprint_is_json_safe(self):
        json.dumps(environment_fingerprint())

    def test_git_sha_in_checkout(self):
        # This test runs from the repo checkout, so the sha resolves.
        env = environment_fingerprint()
        assert env["git_sha"] is None or (
            len(env["git_sha"]) == 40
            and all(c in "0123456789abcdef" for c in env["git_sha"])
        )


# ---------------------------------------------------------------------------
# regression detection on synthetic timing data
# ---------------------------------------------------------------------------
class TestCompare:
    def test_identical_artifacts_pass(self):
        base = synthetic_bench_artifact("a")
        report = compare_artifacts(base, base)
        assert report.ok
        assert {f.kind for f in report.findings} == {"ok"}

    def test_injected_10x_slowdown_fails(self):
        base = synthetic_bench_artifact("a", wall=0.1)
        slow = synthetic_bench_artifact("a", wall=0.1, slowdown=10.0)
        report = compare_artifacts(base, slow, threshold=1.5)
        assert not report.ok
        assert len(report.by_kind("regression")) == 2
        ratios = [f.ratio for f in report.by_kind("regression")]
        assert all(9.0 < r < 11.0 for r in ratios)

    def test_noise_floor_absorbs_fast_benchmarks(self):
        # 10x on a 0.1ms benchmark is under the absolute floor: noise.
        base = synthetic_bench_artifact("a", wall=0.0001)
        slow = synthetic_bench_artifact("a", wall=0.0001, slowdown=10.0)
        assert compare_artifacts(base, slow, threshold=1.5).ok
        assert 0.0001 * 10 < DEFAULT_MIN_WALL

    def test_threshold_is_respected(self):
        base = synthetic_bench_artifact("a", wall=0.1)
        mild = synthetic_bench_artifact("a", wall=0.1, slowdown=2.0)
        assert not compare_artifacts(base, mild, threshold=1.5).ok
        assert compare_artifacts(base, mild, threshold=3.0).ok

    def test_improvement_reported_not_failed(self):
        base = synthetic_bench_artifact("a", wall=0.1, slowdown=10.0)
        fast = synthetic_bench_artifact("a", wall=0.1)
        report = compare_artifacts(base, fast)
        assert report.ok
        assert len(report.by_kind("improvement")) == 2

    def test_integer_metric_drift_fails(self):
        base = synthetic_bench_artifact("a", metrics={"rounds": 4})
        drift = synthetic_bench_artifact("a", metrics={"rounds": 5})
        report = compare_artifacts(base, drift)
        assert not report.ok
        assert report.by_kind("metric-drift")
        assert "rounds" in report.by_kind("metric-drift")[0].detail

    def test_float_metrics_never_gate(self):
        base = synthetic_bench_artifact("a", metrics={"speedup": 7.0})
        drift = synthetic_bench_artifact("a", metrics={"speedup": 1.0})
        assert compare_artifacts(base, drift).ok

    def test_exact_metrics_can_be_disabled(self):
        base = synthetic_bench_artifact("a", metrics={"rounds": 4})
        drift = synthetic_bench_artifact("a", metrics={"rounds": 5})
        assert compare_artifacts(base, drift, exact_metrics=False).ok

    def test_removed_integer_metric_is_drift(self):
        # Deleting a gated metric silently shrinks the gate: fail.
        base = synthetic_bench_artifact("a", metrics={"rounds": 4})
        fresh = synthetic_bench_artifact("a", metrics={"other": 1.0})
        report = compare_artifacts(base, fresh)
        assert not report.ok
        assert "removed" in report.by_kind("metric-drift")[0].detail

    def test_added_metric_passes(self):
        base = synthetic_bench_artifact("a", metrics={"rounds": 4})
        fresh = synthetic_bench_artifact(
            "a", metrics={"rounds": 4, "bits": 128})
        assert compare_artifacts(base, fresh).ok

    def test_missing_benchmark_fails(self):
        base = synthetic_bench_artifact(
            "a", benchmarks=("a.one", "a.two"))
        fresh = synthetic_bench_artifact("a", benchmarks=("a.one",))
        report = compare_artifacts(base, fresh)
        assert not report.ok
        assert [f.benchmark for f in report.by_kind("missing")] == ["a.two"]

    def test_added_benchmark_passes(self):
        base = synthetic_bench_artifact("a", benchmarks=("a.one",))
        fresh = synthetic_bench_artifact(
            "a", benchmarks=("a.one", "a.two"))
        report = compare_artifacts(base, fresh)
        assert report.ok
        assert [f.benchmark for f in report.by_kind("added")] == ["a.two"]

    def test_fresh_error_record_fails(self):
        base = synthetic_bench_artifact("a", benchmarks=("a.one",))
        fresh = synthetic_bench_artifact("a", benchmarks=("a.one",))
        rec = fresh["results"][0]
        rec["status"] = "error"
        rec["error"] = "AssertionError: boom"
        report = compare_artifacts(base, fresh)
        assert not report.ok
        assert "boom" in report.by_kind("error")[0].detail

    def test_baseline_error_record_heals(self):
        base = synthetic_bench_artifact("a", benchmarks=("a.one",))
        base["results"][0]["status"] = "error"
        base["results"][0]["error"] = "was broken"
        fresh = synthetic_bench_artifact("a", benchmarks=("a.one",))
        assert compare_artifacts(base, fresh).ok

    def test_compare_dirs_pairs_by_area(self, tmp_path):
        base_dir, fresh_dir = tmp_path / "base", tmp_path / "fresh"
        for area in ("a", "b"):
            write_artifact(base_dir, synthetic_bench_artifact(area))
            write_artifact(fresh_dir, synthetic_bench_artifact(area))
        report = compare_dirs(base_dir, fresh_dir)
        assert report.ok
        assert report.compared == 4

    def test_compare_dirs_flags_missing_area_artifact(self, tmp_path):
        base_dir, fresh_dir = tmp_path / "base", tmp_path / "fresh"
        write_artifact(base_dir, synthetic_bench_artifact("a"))
        write_artifact(base_dir, synthetic_bench_artifact("b"))
        write_artifact(fresh_dir, synthetic_bench_artifact("a"))
        report = compare_dirs(base_dir, fresh_dir)
        assert not report.ok
        assert all(f.benchmark.startswith("synthetic")
                   for f in report.by_kind("missing"))

    def test_environment_drift_surfaces_in_render(self):
        base = synthetic_bench_artifact(
            "a", environment={"python": "3.11.7"})
        fresh = synthetic_bench_artifact(
            "a", environment={"python": "3.13.1"})
        text = compare_artifacts(base, fresh).render()
        assert "environment drift" in text
        assert "3.11.7 -> 3.13.1" in text

    def test_environment_drift_accumulates_across_areas(self, tmp_path):
        # Drift in the first-sorted area must not be masked by a clean
        # later pair (the fresh dir may be stitched from several runs).
        base_dir, fresh_dir = tmp_path / "base", tmp_path / "fresh"
        env = {"python": "3.11.7"}
        write_artifact(
            base_dir, synthetic_bench_artifact("aaa", environment=env))
        write_artifact(
            base_dir, synthetic_bench_artifact("zzz", environment=env))
        write_artifact(
            fresh_dir,
            synthetic_bench_artifact(
                "aaa", environment={"python": "3.13.1"}),
        )
        write_artifact(
            fresh_dir, synthetic_bench_artifact("zzz", environment=env))
        report = compare_dirs(base_dir, fresh_dir)
        assert report.environment_drift == ["python: 3.11.7 -> 3.13.1"]
        assert "3.13.1" in report.render()


# ---------------------------------------------------------------------------
# runner (one tiny real area only; everything else synthetic)
# ---------------------------------------------------------------------------
class TestRunner:
    def test_run_suite_writes_valid_artifact(self, tmp_path):
        report = run_suite(
            "smoke", areas=["primitives"], out_dir=tmp_path, repeats=1
        )
        assert report.ok, report.render()
        artifact = read_artifact(artifact_path(tmp_path, "primitives"))
        assert artifact["suite"] == "smoke"
        assert {r["benchmark"] for r in artifact["results"]} == {
            "primitives.leader_election",
            "primitives.bfs_tree",
            "primitives.convergecast",
            "primitives.compile_cache",
        }
        for record in artifact["results"]:
            assert record["status"] == "ok"
            assert record["wall_min"] > 0
            assert len(record["wall_seconds"]) == 1

    def test_run_suite_measure_only_writes_nothing(self, tmp_path):
        report = run_suite(
            "smoke", areas=["combinatorics"], out_dir="-", repeats=1
        )
        assert report.ok
        assert report.artifact_paths == []

    def test_repeat_policy_by_suite(self):
        assert SUITE_REPEATS["smoke"] < SUITE_REPEATS["full"]

    def test_integer_metrics_are_reproducible(self, tmp_path):
        runs = [
            run_suite("smoke", areas=["combinatorics"], out_dir="-",
                      repeats=1, seed=7)
            for _ in range(2)
        ]
        ints = [
            {
                (r["benchmark"], r["case_id"], k): v
                for r in run.results
                for k, v in r["metrics"].items()
                if isinstance(v, (bool, int))
            }
            for run in runs
        ]
        assert ints[0] == ints[1]

    def test_failing_benchmark_becomes_error_record(self):
        @benchmark("tmpfail", smoke=[{"x": 1}])
        def always_fails(case, seed):
            assert False, "deliberate"

        try:
            report = run_suite("smoke", areas=["tmpfail"], out_dir="-")
            assert not report.ok
            (record,) = report.results
            assert record["status"] == "error"
            assert "deliberate" in record["error"]
        finally:
            registry._REGISTRY.pop("tmpfail.always_fails")

    def test_execute_benchmark_unit_is_self_contained(self):
        name = registry.names()[0]
        spec = registry.get(name)
        case = spec.cases_for("smoke")[0]
        record = execute_benchmark((name, case, "smoke", 1, 0))
        assert record["benchmark"] == name
        assert record["case_id"] == case_id(case)

    def test_arbitrary_exception_becomes_error_record(self):
        # Not just ReproError/AssertionError: any body failure is
        # captured so one broken benchmark can't abort a suite run.
        @benchmark("tmpboom", smoke=[{"x": 1}])
        def blows_up(case, seed):
            return [][0]  # IndexError

        try:
            report = run_suite("smoke", areas=["tmpboom"], out_dir="-")
            assert not report.ok
            assert "IndexError" in report.results[0]["error"]
        finally:
            registry._REGISTRY.pop("tmpboom.blows_up")

    def test_invalid_repeats_rejected(self):
        with pytest.raises(ConfigurationError, match="repeats"):
            run_suite("smoke", areas=["primitives"], out_dir="-", repeats=0)
        with pytest.raises(ConfigurationError, match="repeats"):
            execute_benchmark(("primitives.bfs_tree", {"rows": 2, "cols": 2},
                               "smoke", 0, 0))

    def test_clear_then_reload_restores_defaults(self):
        before = registry.names()
        try:
            registry.clear()
            assert registry._REGISTRY == {}
        finally:
            registry.load_default_specs()
        assert registry.names() == before

"""Tests for ε-farness machinery (packing, exact distance, Lemma 4)."""

import pytest

from repro.errors import ConfigurationError
from repro.graphs import (
    complete_graph,
    cycle_graph,
    disjoint_cycles_graph,
    farness_bounds,
    flower_graph,
    greedy_cycle_packing,
    is_epsilon_far,
    lemma4_bound,
    min_edge_deletions_to_ck_free,
    path_graph,
    planted_epsilon_far_graph,
)
from repro.graphs.farness import cycle_edges


class TestCycleEdges:
    def test_closes_cycle(self):
        assert cycle_edges((0, 1, 2)) == [(0, 1), (1, 2), (0, 2)]

    def test_canonical(self):
        edges = cycle_edges((3, 1, 2, 0))
        assert all(u < v for u, v in edges)
        assert len(edges) == 4


class TestPacking:
    def test_single_cycle(self):
        g = cycle_graph(5)
        packing = greedy_cycle_packing(g, 5)
        assert len(packing) == 1

    def test_ck_free(self):
        assert greedy_cycle_packing(path_graph(6), 4) == []

    def test_disjoint_cycles_all_found(self):
        g = disjoint_cycles_graph(4, 5, connect=True)
        packing = greedy_cycle_packing(g, 5)
        assert len(packing) == 4

    def test_packing_is_edge_disjoint(self):
        g = complete_graph(7)
        packing = greedy_cycle_packing(g, 3)
        seen = set()
        for cyc in packing:
            for e in cycle_edges(cyc):
                assert e not in seen
                seen.add(e)

    def test_max_cycles_cap(self):
        g = disjoint_cycles_graph(4, 4)
        assert len(greedy_cycle_packing(g, 4, max_cycles=2)) == 2

    def test_bad_k(self):
        with pytest.raises(ConfigurationError):
            greedy_cycle_packing(cycle_graph(4), 2)


class TestExactDistance:
    def test_single_cycle_distance_one(self):
        assert min_edge_deletions_to_ck_free(cycle_graph(6), 6) == 1

    def test_ck_free_distance_zero(self):
        assert min_edge_deletions_to_ck_free(path_graph(5), 3) == 0

    def test_disjoint_cycles(self):
        g = disjoint_cycles_graph(3, 4, connect=True)
        assert min_edge_deletions_to_ck_free(g, 4) == 3

    def test_flower_shared_edge(self):
        """All petals share edge {0,1}... but petals already form k-cycles
        through the shared edge only; removing the shared edge is NOT
        enough because each petal + shared edge is the only k-cycle form.
        Removing {0,1} kills all of them at once -> distance 1."""
        g = flower_graph(4, 5)
        assert min_edge_deletions_to_ck_free(g, 5) == 1

    def test_triangle_rich(self):
        # K4 has 4 triangles; removing 2 non-adjacent edges kills all.
        assert min_edge_deletions_to_ck_free(complete_graph(4), 3) == 2

    def test_budget_exceeded(self):
        g = disjoint_cycles_graph(3, 3, connect=False)
        with pytest.raises(ConfigurationError):
            min_edge_deletions_to_ck_free(g, 3, budget=1)


class TestFarnessBounds:
    def test_free_graph(self):
        lo, hi = farness_bounds(path_graph(6), 4)
        assert (lo, hi) == (0.0, 0.0)

    def test_empty_graph(self):
        from repro.graphs import Graph

        assert farness_bounds(Graph(3), 3) == (0.0, 0.0)

    def test_bounds_order(self):
        g = disjoint_cycles_graph(3, 4, connect=True)
        lo, hi = farness_bounds(g, 4, exact=True)
        assert 0 < lo <= hi
        # exact distance is 3, m = 14: hi = 3/14
        assert hi == pytest.approx(3 / 14)

    def test_packing_lower_bounds_distance(self):
        """|packing| <= exact removal distance, always."""
        for cycles, k in [(2, 3), (3, 4), (2, 5)]:
            g = disjoint_cycles_graph(cycles, k, connect=True)
            packing = greedy_cycle_packing(g, k)
            exact = min_edge_deletions_to_ck_free(g, k)
            assert len(packing) <= exact

    def test_is_epsilon_far_tristate(self):
        g = disjoint_cycles_graph(4, 4, connect=False)  # m=16, distance=4
        assert is_epsilon_far(g, 4, 0.2) is True  # 4/16 = 0.25 >= 0.2
        assert is_epsilon_far(g, 4, 0.3, exact=True) is False
        # Without exact bound, inconclusive for eps above packing ratio
        assert is_epsilon_far(g, 4, 0.3) is None


class TestLemma4:
    def test_bound_formula(self):
        assert lemma4_bound(100, 5, 0.1) == pytest.approx(2.0)

    @pytest.mark.parametrize("k,eps", [(3, 0.1), (4, 0.1), (5, 0.08)])
    def test_planted_instances_satisfy_lemma4(self, k, eps):
        """Certified ε-far instances must contain >= εm/k edge-disjoint
        k-cycles (Lemma 4); the greedy packing must witness it here since
        the construction is a packing."""
        g, certified = planted_epsilon_far_graph(60, k, eps, seed=3)
        packing = greedy_cycle_packing(g, k)
        assert len(packing) >= lemma4_bound(g.m, k, certified) - 1e-9

"""Hypothesis property tests on the graph substrate itself."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Graph, dumps, loads
from repro.graphs.properties import (
    bipartition,
    degree_histogram,
    density,
    diameter,
    is_bipartite,
)


@st.composite
def graphs(draw, n_lo=0, n_hi=12):
    n = draw(st.integers(n_lo, n_hi))
    if n < 2:
        return Graph(n)
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), unique=True, max_size=24))
    return Graph(n, edges)


class TestStructuralInvariants:
    @settings(max_examples=120, deadline=None)
    @given(g=graphs())
    def test_handshake_lemma(self, g):
        assert sum(g.degree(v) for v in g.vertices()) == 2 * g.m

    @settings(max_examples=120, deadline=None)
    @given(g=graphs())
    def test_validate_never_fails_on_legal_graphs(self, g):
        g.validate()

    @settings(max_examples=100, deadline=None)
    @given(g=graphs())
    def test_degree_histogram_totals(self, g):
        hist = degree_histogram(g)
        assert sum(hist.values()) == g.n
        assert sum(d * c for d, c in hist.items()) == 2 * g.m

    @settings(max_examples=100, deadline=None)
    @given(g=graphs(n_lo=2))
    def test_density_bounds(self, g):
        assert 0.0 <= density(g) <= 1.0

    @settings(max_examples=100, deadline=None)
    @given(g=graphs())
    def test_csr_consistent(self, g):
        indptr, indices = g.to_csr()
        assert indptr[-1] == 2 * g.m
        for u in g.vertices():
            row = indices[int(indptr[u]): int(indptr[u + 1])]
            assert tuple(row.tolist()) == g.neighbors(u)

    @settings(max_examples=80, deadline=None)
    @given(g=graphs())
    def test_copy_equals_but_is_independent(self, g):
        h = g.copy()
        assert h == g
        if h.n >= 2 and not h.has_edge(0, 1):
            h.add_edge(0, 1)
            assert h != g


class TestBipartitenessProperty:
    @settings(max_examples=100, deadline=None)
    @given(g=graphs())
    def test_bipartition_is_proper_when_it_exists(self, g):
        part = bipartition(g)
        if part is None:
            return
        side0, side1 = part
        s0 = set(side0)
        assert len(side0) + len(side1) == g.n
        for u, v in g.edges():
            assert (u in s0) != (v in s0)

    @settings(max_examples=80, deadline=None)
    @given(g=graphs(n_lo=3))
    def test_odd_girth_iff_not_bipartite(self, g):
        from repro.graphs import girth

        gg = girth(g)
        has_odd_cycle = False
        if gg is not None:
            # check all odd lengths up to n for an odd cycle
            from repro.graphs import has_k_cycle

            has_odd_cycle = any(
                has_k_cycle(g, k) for k in range(3, g.n + 1, 2)
            )
        assert is_bipartite(g) == (not has_odd_cycle)


class TestDiameterProperty:
    @settings(max_examples=60, deadline=None)
    @given(g=graphs(n_lo=1))
    def test_diameter_bounds(self, g):
        d = diameter(g)
        if d is None:
            assert g.n == 0 or not g.is_connected()
        else:
            assert 0 <= d <= g.n - 1


class TestIoRoundtripProperty:
    @settings(max_examples=120, deadline=None)
    @given(g=graphs())
    def test_roundtrip(self, g):
        assert loads(dumps(g)) == g

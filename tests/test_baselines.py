"""Tests for the baseline algorithms (naive, gather, triangle tester)."""

import pytest

from helpers import random_graphs
from repro.baselines import (
    TriangleTesterCHFSV,
    gather_detect_cycle_through_edge,
    naive_detect_cycle_through_edge,
)
from repro.core import detect_cycle_through_edge, max_sequences_any_round
from repro.errors import BandwidthExceededError, ConfigurationError
from repro.graphs import (
    blowup_graph,
    complete_bipartite_graph,
    complete_graph,
    has_cycle_through_edge,
    path_graph,
    planted_epsilon_far_graph,
)


class TestNaiveBaseline:
    @pytest.mark.parametrize("k", [3, 4, 5, 6, 7])
    def test_correct_on_random_graphs(self, k):
        """Naive forwarding is complete and sound (it keeps a superset of
        Algorithm 1's sequences)."""
        for g in random_graphs(6, seed=300 + k):
            if g.m == 0:
                continue
            for e in list(g.edges())[:4]:
                expected = has_cycle_through_edge(g, e, k)
                res = naive_detect_cycle_through_edge(g, e, k)
                assert res.detected == expected

    def test_blowup_instances_explode(self):
        """The point of the baseline: message load grows with multiplicity
        while Algorithm 1 stays below the Lemma 3 constant."""
        k = 8
        for w in (4, 6, 8):
            g = blowup_graph(w, k)
            naive = naive_detect_cycle_through_edge(g, (0, 1), k)
            pruned = detect_cycle_through_edge(g, (0, 1), k)
            assert naive.detected and pruned.detected
            assert naive.max_sequences_per_message >= w * w  # ~w^(t-1)
            assert (
                pruned.run.trace.max_sequences_per_message
                <= max_sequences_any_round(k)
            )

    def test_cap_trips_and_truncates(self):
        g = blowup_graph(8, 8)
        res = naive_detect_cycle_through_edge(g, (0, 1), 8, max_sequences_cap=10)
        assert res.cap_tripped

    def test_missing_edge(self):
        with pytest.raises(ConfigurationError):
            naive_detect_cycle_through_edge(path_graph(3), (0, 2), 3)


class TestGatherBaseline:
    @pytest.mark.parametrize("k", [3, 4, 5, 6])
    def test_correct_on_random_graphs(self, k):
        for g in random_graphs(5, seed=400 + k):
            if g.m == 0:
                continue
            for e in list(g.edges())[:3]:
                expected = has_cycle_through_edge(g, e, k)
                res = gather_detect_cycle_through_edge(g, e, k)
                assert res.detected == expected

    def test_violates_congest_on_dense_instances(self):
        """§1.2's point: ball collection bursts the bandwidth budget."""
        g = complete_bipartite_graph(24, 24)
        with pytest.raises(BandwidthExceededError):
            gather_detect_cycle_through_edge(
                g, (0, 24), 4, strict_bandwidth=True
            )

    def test_algorithm1_fits_where_gather_does_not(self):
        """Same dense instance: Algorithm 1 stays within budget."""
        g = complete_bipartite_graph(24, 24)
        det = detect_cycle_through_edge(g, (0, 24), 4, strict_bandwidth=True)
        assert det.detected  # and no BandwidthExceededError raised

    def test_gather_message_bits_dominate(self):
        g = complete_graph(12)
        gather = gather_detect_cycle_through_edge(g, (0, 1), 5)
        pruned = detect_cycle_through_edge(g, (0, 1), 5)
        assert gather.max_message_bits > pruned.run.trace.max_message_bits


class TestTriangleTester:
    def test_one_sided_on_triangle_free(self):
        g = complete_bipartite_graph(6, 6)  # triangle-free, dense in C4s
        tester = TriangleTesterCHFSV(0.3, repetitions=50)
        res = tester.run(g, seed=1)
        assert res.accepted

    def test_rejects_triangle_rich_graphs(self):
        g = complete_graph(12)  # every probe is a triangle probe
        tester = TriangleTesterCHFSV(0.3)
        res = tester.run(g, seed=2)
        assert not res.accepted

    def test_eps_far_rejected(self):
        g, _ = planted_epsilon_far_graph(60, 3, 0.1, seed=3)
        tester = TriangleTesterCHFSV(0.1)
        res = tester.run(g, seed=4)
        assert not res.accepted

    def test_round_budget(self):
        tester = TriangleTesterCHFSV(0.2, repetitions=7)
        res = tester.run(path_graph(6), seed=0)
        assert res.accepted
        assert res.total_rounds == 7 * 2

    def test_bad_eps(self):
        with pytest.raises(ConfigurationError):
            TriangleTesterCHFSV(0.0)

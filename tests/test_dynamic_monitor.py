"""CkMonitor unit tests: decision rules, witness maintenance, locality,
full re-detection, and the growth/adversarial extremes."""

import pytest

from repro.dynamic import (
    CkMonitor,
    DynamicGraph,
    Mutation,
    build_stream,
    full_redetect,
)
from repro.dynamic.monitor import (
    CACHE_HIT,
    FULL_RETEST,
    LOCAL_RECHECK,
    k_neighborhood_ball,
)
from repro.errors import ConfigurationError
from repro.graphs.cycles import has_k_cycle
from repro.graphs.generators import (
    cycle_graph,
    erdos_renyi_gnp,
    path_graph,
    star_graph,
)


def witness_is_valid(graph, witness, k):
    """The cached evidence is a genuine k-cycle of ``graph``."""
    if witness is None or len(witness) != k or len(set(witness)) != k:
        return False
    return all(
        graph.has_edge(witness[i], witness[(i + 1) % k]) for i in range(k)
    )


class TestDecisionRules:
    def test_init_verdicts(self):
        assert CkMonitor(cycle_graph(5), 5).accepted is False
        assert CkMonitor(cycle_graph(6), 5).accepted is True
        assert CkMonitor(path_graph(6), 5).accepted is True

    def test_add_vertex_is_cache_hit(self):
        mon = CkMonitor(cycle_graph(5), 5)
        rec = mon.apply(Mutation("add_vertex"))
        assert rec.action == CACHE_HIT
        assert mon.accepted is False
        assert witness_is_valid(mon.graph, mon.witness, 5)

    def test_insert_into_reject_is_cache_hit(self):
        mon = CkMonitor(cycle_graph(5), 5)
        assert not mon.accepted
        rec = mon.apply(Mutation("add_edge", 0, 2))  # chord: cycle survives
        assert rec.action == CACHE_HIT
        assert not mon.accepted
        assert witness_is_valid(mon.graph, mon.witness, 5)

    def test_delete_in_accept_is_cache_hit(self):
        mon = CkMonitor(path_graph(6), 5)
        rec = mon.apply(Mutation("remove_edge", 2, 3))
        assert rec.action == CACHE_HIT and mon.accepted

    def test_insert_local_recheck_flips_to_reject(self):
        mon = CkMonitor(path_graph(5), 5)  # 0-1-2-3-4
        rec = mon.apply(Mutation("add_edge", 0, 4))  # closes a 5-cycle
        assert rec.action == LOCAL_RECHECK
        assert rec.flipped and not mon.accepted
        assert witness_is_valid(mon.graph, mon.witness, 5)

    def test_insert_local_recheck_stays_accept(self):
        mon = CkMonitor(path_graph(6), 5)
        rec = mon.apply(Mutation("add_edge", 0, 2))  # makes a triangle only
        assert rec.action == LOCAL_RECHECK
        assert mon.accepted  # no 5-cycle appeared

    def test_witness_preserving_deletion_is_cache_hit(self):
        g = cycle_graph(5)
        g.add_vertex()
        g.add_edge(0, 5)  # pendant edge, not on the cycle
        mon = CkMonitor(g, 5)
        assert not mon.accepted
        rec = mon.apply(Mutation("remove_edge", 0, 5))
        assert rec.action == CACHE_HIT and not mon.accepted

    def test_witness_destroying_deletion_full_retest(self):
        mon = CkMonitor(cycle_graph(5), 5)
        edge = (mon.witness[0], mon.witness[1])
        rec = mon.apply(Mutation("remove_edge", *edge))
        assert rec.action == FULL_RETEST
        assert mon.accepted and mon.witness is None  # the only cycle died

    def test_full_retest_finds_surviving_cycle(self):
        # Two edge-disjoint 5-cycles sharing vertex 0: killing the cached
        # witness must rediscover the other cycle.
        g = cycle_graph(5)  # 0-1-2-3-4-0
        for _ in range(4):
            g.add_vertex()
        for u, v in [(0, 5), (5, 6), (6, 7), (7, 8), (8, 0)]:
            g.add_edge(u, v)
        mon = CkMonitor(g, 5)
        assert not mon.accepted
        w = mon.witness
        rec = mon.apply(Mutation("remove_edge", w[0], w[1]))
        assert rec.action == FULL_RETEST
        assert not mon.accepted
        assert witness_is_valid(mon.graph, mon.witness, 5)

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            CkMonitor(path_graph(3), 2)

    def test_adopts_dynamic_graph(self):
        dyn = DynamicGraph(cycle_graph(6))
        mon = CkMonitor(dyn, 6)
        assert mon.dynamic is dyn
        assert not mon.accepted


class TestLocality:
    def test_ball_contains_cycle_range(self):
        g = cycle_graph(10)
        ball = k_neighborhood_ball(g, (0, 1), 2)
        assert set(ball) == {8, 9, 0, 1, 2, 3}

    def test_ball_radius_zero(self):
        g = path_graph(5)
        assert k_neighborhood_ball(g, (1, 2), 0) == [1, 2]

    def test_ball_star(self):
        g = star_graph(6)  # centre 0
        assert k_neighborhood_ball(g, (0, 1), 1) == list(range(7))


class TestFullRedetect:
    @pytest.mark.parametrize("engine", ["reference", "fast"])
    @pytest.mark.parametrize("use_tester", [True, False])
    def test_matches_oracle(self, engine, use_tester):
        for seed in range(4):
            g = erdos_renyi_gnp(14, 0.16, seed=seed)
            accepted, witness = full_redetect(
                g, 5, engine=engine, seed=seed,
                use_tester_fast_path=use_tester,
            )
            assert accepted == (not has_k_cycle(g, 5))
            if not accepted:
                assert witness_is_valid(g, witness, 5)

    def test_edgeless_graph_accepts(self):
        from repro.graphs.graph import Graph

        assert full_redetect(Graph(5), 4) == (True, None)


class TestScenarios:
    def test_growth_never_full_retests(self):
        base = cycle_graph(6)
        stream = build_stream("growth:steps=30", base, seed=5, k=5)
        mon = CkMonitor(stream.base, 5, seed=5)
        mon.run_stream(stream.mutations)
        assert mon.stats.full_retests == 0
        assert mon.stats.steps == 30
        assert mon.accepted == (not has_k_cycle(mon.graph, 5))

    def test_near_cycle_flips_verdicts(self):
        base = path_graph(10)
        stream = build_stream("near-cycle:steps=40", base, seed=2, k=5)
        mon = CkMonitor(stream.base, 5, seed=2)
        mon.run_stream(stream.mutations)
        # The adversarial toggler must actually exercise the hard paths.
        assert mon.stats.verdict_flips >= 2
        assert mon.stats.full_retests >= 1
        assert mon.accepted == (not has_k_cycle(mon.graph, 5))

    def test_stats_accounting(self):
        base = erdos_renyi_gnp(16, 0.12, seed=0)
        stream = build_stream("uniform-churn:steps=25,p=0.5", base, seed=0,
                              k=5)
        mon = CkMonitor(stream.base, 5, seed=0)
        records = mon.run_stream(stream.mutations)
        s = mon.stats
        assert s.steps == len(records) == 25
        assert s.cache_hits + s.local_rechecks + s.full_retests == s.steps
        assert s.verdict_flips == sum(1 for r in records if r.flipped)
        assert 0.0 <= s.cache_hit_rate <= 1.0
        assert mon.history == records

    def test_step_seed_schedule_is_deterministic(self):
        a = CkMonitor(path_graph(4), 5, seed=3)
        b = CkMonitor(path_graph(4), 5, seed=3)
        assert [a.step_seed(t) for t in range(5)] == \
               [b.step_seed(t) for t in range(5)]
        assert a.step_seed(0) != CkMonitor(path_graph(4), 5, seed=4).step_seed(0)

"""Tests for the bounded hitting-set solver."""

from itertools import combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.combinatorics import (
    find_hitting_set,
    has_hitting_set,
    min_hitting_set_size,
)


def brute_force_min_hitting(family, cap):
    universe = sorted({x for s in family for x in s})
    if any(not s for s in family):
        return None
    for size in range(0, cap + 1):
        for combo in combinations(universe, size):
            cset = set(combo)
            if all(cset & set(s) for s in family):
                return size
    return None


class TestBasics:
    def test_empty_family(self):
        assert find_hitting_set([], 0) == set()
        assert has_hitting_set([], 0)

    def test_empty_set_unhittable(self):
        assert find_hitting_set([set()], 5) is None
        assert not has_hitting_set([{1}, set()], 5)

    def test_single_set(self):
        h = find_hitting_set([{1, 2, 3}], 1)
        assert h is not None and len(h) == 1 and h & {1, 2, 3}

    def test_budget_zero(self):
        assert not has_hitting_set([{1}], 0)
        assert has_hitting_set([], 0)

    def test_disjoint_sets_need_one_each(self):
        family = [{1}, {2}, {3}]
        assert not has_hitting_set(family, 2)
        assert has_hitting_set(family, 3)

    def test_shared_element(self):
        family = [{1, 2}, {1, 3}, {1, 4}]
        h = find_hitting_set(family, 1)
        assert h == {1}

    def test_returned_set_hits_everything(self):
        # The sets are the edges of a 5-cycle; min vertex cover = 3.
        family = [{1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 1}]
        assert find_hitting_set(family, 2) is None
        h = find_hitting_set(family, 3)
        assert h is not None and len(h) <= 3
        assert all(h & s for s in family)

    def test_min_size(self):
        family = [{1, 2}, {3, 4}]
        assert min_hitting_set_size(family, 5) == 2
        assert min_hitting_set_size([{1}, {2}, {3}], 2) is None

    def test_non_integer_elements(self):
        family = [{"a", "b"}, {"b", "c"}]
        assert find_hitting_set(family, 1) == {"b"}


class TestAgainstBruteForce:
    @settings(max_examples=200, deadline=None)
    @given(
        family=st.lists(
            st.frozensets(st.integers(0, 7), min_size=1, max_size=3),
            min_size=0,
            max_size=6,
        ),
        budget=st.integers(0, 4),
    )
    def test_decision_matches_brute_force(self, family, budget):
        expected = brute_force_min_hitting(family, budget)
        got = find_hitting_set(family, budget)
        if expected is None:
            assert got is None
        else:
            assert got is not None
            assert len(got) <= budget
            assert all(got & set(s) for s in family)

    @settings(max_examples=100, deadline=None)
    @given(
        family=st.lists(
            st.frozensets(st.integers(0, 6), min_size=1, max_size=3),
            min_size=1,
            max_size=5,
        ),
    )
    def test_min_size_matches_brute_force(self, family):
        assert min_hitting_set_size(family, 5) == brute_force_min_hitting(family, 5)

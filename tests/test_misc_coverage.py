"""Targeted tests for remaining corner paths across the library."""

import pytest

from repro.analysis import run_scalability
from repro.congest import (
    Broadcast,
    Instrumentation,
    Network,
    NodeProgram,
    SizeModel,
    SpreadIds,
    SynchronousScheduler,
    render_comparison,
)
from repro.congest.ids import _is_prime, _next_prime
from repro.core import detect_cycle_through_edge
from repro.graphs import cycle_graph, farness_bounds, path_graph


class TestScalabilityRunner:
    def test_rows_and_shape(self):
        res = run_scalability(k=4, ns=(50, 100), seed=1)
        assert len(res.rows) == 2
        assert all(r["seconds"] > 0 for r in res.rows)
        assert "F3" in res.experiment


class TestSpreadIdsInternals:
    def test_prime_helpers(self):
        assert _is_prime(2) and _is_prime(13) and not _is_prime(1)
        assert not _is_prime(9) and not _is_prime(0)
        assert _next_prime(14) == 17
        assert _next_prime(2) == 2

    def test_custom_multiplier(self):
        ids = SpreadIds(a=7, b=3).assign(20)
        assert len(set(ids)) == 20

    def test_rejects_bad_multiplier(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            SpreadIds(a=0)


class TestSchedulerCorners:
    def test_broadcast_none_sends_nothing(self):
        class Quiet(NodeProgram):
            def on_start(self, ctx):
                return Broadcast(None)

            def on_round(self, ctx, r, inbox):
                return None

            def on_finish(self, ctx, inbox):
                return len(inbox)

        result = SynchronousScheduler(Network(path_graph(3))).run(
            lambda ctx: Quiet(), num_rounds=1
        )
        assert all(v == 0 for v in result.outputs.values())
        assert result.trace.total_messages == 0

    def test_observe_outside_round_raises(self):
        instr = Instrumentation(SizeModel(id_bits=8), n=4)
        with pytest.raises(RuntimeError):
            instr.observe(0, 1, "x")

    def test_render_comparison_default_labels(self):
        g = cycle_graph(5)
        t = detect_cycle_through_edge(g, (0, 1), 5).run.trace
        out = render_comparison([t, t])
        assert "run 0" in out and "run 1" in out


class TestFarnessCorners:
    def test_exact_bounds_on_free_graph(self):
        lo, hi = farness_bounds(path_graph(5), 3, exact=True)
        assert (lo, hi) == (0.0, 0.0)

    def test_nonempty_graph_exact(self):
        g = cycle_graph(4)
        lo, hi = farness_bounds(g, 4, exact=True)
        assert lo == pytest.approx(0.25)
        assert hi == pytest.approx(0.25)

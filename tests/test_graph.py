"""Unit tests for the core Graph data structure."""

import pytest

from repro.errors import GraphError
from repro.graphs import Graph
from repro.graphs.graph import edge_set


class TestConstruction:
    def test_empty(self):
        g = Graph(0)
        assert g.n == 0
        assert g.m == 0
        assert list(g.edges()) == []

    def test_basic(self):
        g = Graph(3, [(0, 1), (1, 2)])
        assert g.n == 3
        assert g.m == 2
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_negative_n_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1)

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph(3, [(1, 1)])

    def test_duplicate_edge_rejected_strict(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 1), (1, 0)])

    def test_duplicate_edge_collapsed_lenient(self):
        g = Graph(3, [(0, 1), (1, 0)], strict=False)
        assert g.m == 1

    def test_out_of_range_vertex(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 3)])

    def test_non_int_vertex(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, "a")])  # type: ignore[list-item]


class TestMutation:
    def test_add_remove(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        assert g.m == 2
        g.remove_edge(0, 1)
        assert g.m == 1
        assert not g.has_edge(0, 1)

    def test_remove_missing_raises(self):
        g = Graph(3)
        with pytest.raises(GraphError):
            g.remove_edge(0, 1)

    def test_add_vertex(self):
        g = Graph(2, [(0, 1)])
        w = g.add_vertex()
        assert w == 2
        assert g.n == 3
        assert g.degree(w) == 0
        g.add_edge(w, 0)
        assert g.has_edge(2, 0)


class TestQueries:
    def test_neighbors_sorted(self):
        g = Graph(5, [(3, 0), (3, 4), (3, 1)])
        assert g.neighbors(3) == (0, 1, 4)

    def test_neighbors_cache_invalidation(self):
        g = Graph(4, [(0, 1)])
        assert g.neighbors(0) == (1,)
        g.add_edge(0, 3)
        assert g.neighbors(0) == (1, 3)
        g.remove_edge(0, 1)
        assert g.neighbors(0) == (3,)

    def test_degree(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.degree(1) == 1
        assert g.max_degree() == 3

    def test_edges_canonical_sorted(self):
        g = Graph(4, [(3, 2), (1, 0), (2, 0)])
        assert list(g.edges()) == [(0, 1), (0, 2), (2, 3)]

    def test_contains(self):
        g = Graph(3, [(0, 2)])
        assert (0, 2) in g
        assert (2, 0) in g
        assert (0, 1) not in g

    def test_adjacency_set_immutable_type(self):
        g = Graph(3, [(0, 1)])
        s = g.adjacency_set(0)
        assert isinstance(s, frozenset)
        assert s == {1}


class TestStructure:
    def test_connected(self):
        assert Graph(1).is_connected()
        assert Graph(2, [(0, 1)]).is_connected()
        assert not Graph(2).is_connected()
        assert not Graph(4, [(0, 1), (2, 3)]).is_connected()

    def test_components(self):
        g = Graph(5, [(0, 1), (2, 3)])
        comps = g.connected_components()
        assert comps == [[0, 1], [2, 3], [4]]

    def test_copy_independent(self):
        g = Graph(3, [(0, 1)])
        h = g.copy()
        h.add_edge(1, 2)
        assert g.m == 1
        assert h.m == 2
        assert g == Graph(3, [(0, 1)])

    def test_subgraph(self):
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
        h = g.subgraph([0, 1, 2])
        assert h.n == 3
        assert sorted(h.edges()) == [(0, 1), (1, 2)]

    def test_subgraph_duplicate_rejected(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(GraphError):
            g.subgraph([0, 0])

    def test_relabel_roundtrip(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        perm = [3, 2, 1, 0]
        h = g.relabel(perm)
        inverse = [perm.index(i) for i in range(4)]
        assert h.relabel(inverse) == g

    def test_relabel_requires_permutation(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(GraphError):
            g.relabel([0, 0, 1])

    def test_disjoint_union(self):
        a = Graph(2, [(0, 1)])
        b = Graph(3, [(0, 2)])
        u = a.disjoint_union(b)
        assert u.n == 5
        assert sorted(u.edges()) == [(0, 1), (2, 4)]


class TestArrayExport:
    def test_csr_roundtrip(self):
        g = Graph(4, [(0, 1), (0, 2), (2, 3)])
        indptr, indices = g.to_csr()
        assert indptr.tolist() == [0, 2, 3, 5, 6]
        assert indices.tolist() == [1, 2, 0, 0, 3, 2]

    def test_edge_array(self):
        g = Graph(3, [(2, 1), (0, 2)])
        arr = g.edge_array()
        assert arr.tolist() == [[0, 2], [1, 2]]

    def test_from_canonical_edge_arrays_roundtrip(self):
        import numpy as np

        g = Graph(6, [(0, 1), (0, 3), (2, 4), (3, 5)])
        arr = g.edge_array()
        h = Graph.from_canonical_edge_arrays(6, arr[:, 0], arr[:, 1])
        assert h.n == g.n and h.m == g.m
        assert set(h.edges()) == set(g.edges())
        h.validate()
        empty = Graph.from_canonical_edge_arrays(
            3, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert (empty.n, empty.m) == (3, 0)


class TestValidation:
    def test_validate_ok(self):
        Graph(4, [(0, 1), (2, 3)]).validate()

    def test_validate_detects_corruption(self):
        g = Graph(3, [(0, 1)])
        g._adj[0].add(2)  # corrupt: asymmetric
        with pytest.raises(GraphError):
            g.validate()

    def test_edge_set_helper(self):
        assert edge_set([(1, 0), (0, 1), (2, 1)]) == {(0, 1), (1, 2)}

    def test_repr(self):
        assert repr(Graph(3, [(0, 1)])) == "Graph(n=3, m=1)"

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Graph(1))

    def test_eq_other_type(self):
        assert Graph(1) != 42

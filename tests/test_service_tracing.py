"""Request tracing over the real HTTP boundary.

A module-scoped :class:`~repro.service.ServerHarness` runs with an
in-memory event sink so every test can inspect the server's wide
events and spans: traceparent adoption and echo, one wide event per
request, complete ``parent_id`` chains down to engine spans (checked by
:func:`~repro.obs.traceview.check_traces`), the loadgen join check, and
a hypothesis fuzz pushing malformed ``traceparent`` headers through the
wire — the server must never crash and never double-count a request.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.obs import ListSink, Telemetry
from repro.obs.tracing import TraceIdSource, parse_traceparent
from repro.obs.traceview import check_traces
from repro.service import ServerHarness
from repro.service.client import ServiceClient
from repro.service.loadgen import LoadgenConfig, run_loadgen


@pytest.fixture(scope="module")
def sink():
    return ListSink()


@pytest.fixture(scope="module")
def harness(sink):
    telemetry = Telemetry(sink=sink, trace_seed=7)
    with ServerHarness(
        telemetry=telemetry, max_sessions=16, debug=True
    ) as h:
        yield h


@pytest.fixture()
def client(harness):
    c = harness.client()
    for name in list(c.list_sessions()["sessions"]):
        c.delete(name)
    return c


def _traced_client(harness, seed=1):
    return ServiceClient(
        harness.host, harness.port, ids=TraceIdSource(seed)
    )


def _requests_in(sink, trace_id):
    return [
        e for e in sink.events
        if e.get("type") == "request" and e.get("trace_id") == trace_id
    ]


class TestWideEvents:
    def test_every_request_emits_one_wide_event(self, harness, client, sink):
        traced = _traced_client(harness)
        traced.request("GET", "/healthz")
        assert traced.last_trace_id is not None
        events = _requests_in(sink, traced.last_trace_id)
        assert len(events) == 1
        event = events[0]
        assert event["endpoint"] == "healthz"
        assert event["method"] == "GET" and event["path"] == "/healthz"
        assert event["status"] == 200
        assert event["bytes_in"] == 0 and event["bytes_out"] > 0
        assert event["elapsed_ms"] >= 0
        assert len(event["span_id"]) == 16

    def test_session_and_actions_ride_along(self, harness, client, sink):
        traced = _traced_client(harness, seed=2)
        status, _ = traced.request(
            "POST", "/v1/sessions",
            body=b'{"name": "wide", "k": 4, "n": 6}',
        )
        assert status == 201
        create = _requests_in(sink, traced.last_trace_id)[0]
        assert create["session"] == "wide"
        status, _ = traced.request(
            "POST", "/v1/sessions/wide/mutations",
            body=b"+ 0 1\n", content_type="text/plain",
        )
        assert status == 200
        mutate = _requests_in(sink, traced.last_trace_id)[0]
        assert mutate["session"] == "wide"
        assert "actions" in mutate

    def test_error_responses_also_traced(self, harness, client, sink):
        traced = _traced_client(harness, seed=3)
        status, _ = traced.request("GET", "/v1/sessions/absent/verdict")
        assert status == 404
        (event,) = _requests_in(sink, traced.last_trace_id)
        assert event["status"] == 404


class TestTraceparentAdoption:
    def test_client_context_adopted_as_parent(self, harness, client, sink):
        traced = _traced_client(harness, seed=4)
        # Reproduce the client's next header from an equal-seeded source.
        shadow = TraceIdSource(4)
        expect_trace, expect_span = shadow.trace_id(), shadow.span_id()
        traced.request("GET", "/healthz")
        assert traced.last_trace_id == expect_trace
        (event,) = _requests_in(sink, expect_trace)
        assert event["parent_id"] == expect_span
        assert event["span_id"] != expect_span
        echoed = parse_traceparent(traced.last_traceparent)
        assert echoed.span_id == event["span_id"]

    def test_untraced_client_gets_fresh_server_ids(self, client, sink):
        client.healthz()
        assert client.last_traceparent is not None
        context = parse_traceparent(client.last_traceparent)
        assert context is not None
        (event,) = _requests_in(sink, context.trace_id)
        assert event["parent_id"] is None

    def test_retry_safe_fresh_ids_per_request(self, harness, client):
        traced = _traced_client(harness, seed=5)
        traced.request("GET", "/healthz")
        first = traced.last_trace_id
        traced.request("GET", "/healthz")
        assert traced.last_trace_id != first


class TestSpanChains:
    def test_request_spans_chain_to_wide_event(self, harness, client, sink):
        traced = _traced_client(harness, seed=6)
        traced.request(
            "POST", "/v1/sessions", body=b'{"name": "chain", "k": 4, "n": 6}'
        )
        create_trace = traced.last_trace_id
        traced.request(
            "POST", "/v1/sessions/chain/mutations",
            body=b"+ 0 1\n+ 1 2\n", content_type="text/plain",
        )
        mutate_trace = traced.last_trace_id
        involved = {create_trace, mutate_trace}
        events = [
            e for e in sink.events if e.get("trace_id") in involved
        ]
        assert check_traces(events) == []
        create_names = {
            e["name"] for e in events
            if e.get("type") == "span" and e["trace_id"] == create_trace
        }
        assert "session.create" in create_names
        assert "monitor.full_redetect" in create_names
        mutate_names = {
            e["name"] for e in events
            if e.get("type") == "span" and e["trace_id"] == mutate_trace
        }
        assert "session.apply" in mutate_names

    def test_whole_sink_is_a_valid_forest(self, harness, client, sink):
        # Everything every test so far pushed through the server must
        # still satisfy the causal invariants.
        traced = _traced_client(harness, seed=8)
        traced.request("GET", "/v1/sessions")
        traced_events = [
            e for e in sink.events if e.get("trace_id") is not None
        ]
        assert check_traces(traced_events) == []


# ---------------------------------------------------------------------------
# Fuzzing the traceparent header through the HTTP boundary
# ---------------------------------------------------------------------------
_hex = "0123456789abcdef"
_valid_like = st.tuples(
    st.sampled_from(["00", "ff", "0", "zz"]),
    st.text(alphabet=_hex + "XYZ ", min_size=0, max_size=40),
    st.text(alphabet=_hex + "XYZ ", min_size=0, max_size=20),
    st.sampled_from(["01", "00", "", "1"]),
).map(lambda t: "-".join(p for p in t if p))
_traceparents = st.one_of(
    st.just(""),
    st.text(min_size=0, max_size=64).map(
        lambda s: "".join(c for c in s if 32 <= ord(c) < 127)
    ),
    _valid_like,
)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(header=_traceparents)
def test_fuzz_malformed_traceparent_never_crashes(harness, sink, header):
    """Whatever bytes arrive in ``traceparent``: the request succeeds,
    the response carries a *valid* traceparent, exactly one wide event
    and one counter increment are recorded — never a crash, never a
    double count."""
    client = harness.client()
    counter = harness.server.telemetry.counter(
        "repro_service_requests_total", "", ("endpoint", "status")
    )
    before_count = counter.value(endpoint="healthz", status="200")
    before_events = sum(
        1 for e in sink.events
        if e.get("type") == "request" and e.get("endpoint") == "healthz"
    )
    status, payload = client.request(
        "GET", "/healthz", headers={"Traceparent": header}
    )
    assert status == 200 and payload["status"] == "ok"
    echoed = parse_traceparent(client.last_traceparent)
    assert echoed is not None
    after_count = counter.value(endpoint="healthz", status="200")
    after_events = sum(
        1 for e in sink.events
        if e.get("type") == "request" and e.get("endpoint") == "healthz"
    )
    assert after_count == before_count + 1
    assert after_events == before_events + 1
    incoming = parse_traceparent(header)
    if incoming is not None:
        # Valid headers are adopted, not regenerated.
        assert echoed.trace_id == incoming.trace_id


class TestLoadgenJoin:
    def test_rows_join_to_server_wide_events(self, tmp_path):
        config = LoadgenConfig(
            clients=2,
            params={"n": 12, "p": 0.2},
            stream="uniform-churn:steps=4,p=0.5",
            k=4,
            batch=2,
            trace=True,
        )
        out = tmp_path / "rows.jsonl"
        summary = run_loadgen(config, out=out)
        assert summary["errors"] == 0
        assert summary["parity_ok"] is True
        lines = [
            json.loads(line) for line in out.read_text().splitlines()
        ]
        rows = [row for row in lines if "summary" not in row]
        assert len(rows) == 2
        for row in rows:
            assert row["trace_join_ok"] is True
            assert len(row["trace_ids"]) == row["requests"]
            assert len(set(row["trace_ids"])) == row["requests"]

    def test_trace_off_rows_carry_no_ids(self, tmp_path):
        config = LoadgenConfig(
            clients=1,
            params={"n": 10, "p": 0.2},
            stream="uniform-churn:steps=2,p=0.5",
            k=4,
        )
        out = tmp_path / "rows.jsonl"
        summary = run_loadgen(config, out=out)
        assert summary["errors"] == 0
        row = json.loads(out.read_text().splitlines()[0])
        assert "trace_ids" not in row
        assert "trace_join_ok" not in row

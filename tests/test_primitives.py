"""Tests for the classic CONGEST primitives (leader election, BFS,
convergecast) — also validation of the scheduler against textbook
round complexities."""

import pytest

from repro.congest import (
    Network,
    ReverseIds,
    SynchronousScheduler,
    aggregate,
    build_bfs_tree,
    elect_leader,
)
from repro.congest.primitives import LeaderElectProgram
from repro.errors import ConfigurationError
from repro.graphs import (
    Graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_tree,
    star_graph,
)


class TestLeaderElection:
    def test_min_id_wins(self):
        net = Network(cycle_graph(9))
        leader, _ = elect_leader(net)
        assert leader == 0

    def test_reverse_ids(self):
        net = Network(path_graph(5), ReverseIds())
        leader, _ = elect_leader(net)
        assert leader == 0  # the *ID* 0, carried by vertex 4

    def test_converges_in_eccentricity_rounds(self):
        """On a path, ID 0 sits at one end: n-1 rounds are needed and
        sufficient for all nodes to learn it."""
        n = 7
        net = Network(path_graph(n))
        leader, run = elect_leader(net, rounds=n - 1)
        assert leader == 0
        # With too few rounds, the far end has not heard of 0 yet.
        run_short = SynchronousScheduler(net).run(
            lambda ctx: LeaderElectProgram(ctx), num_rounds=n - 3
        )
        assert run_short.outputs[n - 1] != 0

    def test_disconnected_raises(self):
        g = Graph(4, [(0, 1), (2, 3)])
        with pytest.raises(ConfigurationError):
            elect_leader(Network(g))

    def test_quiescence(self):
        """After convergence no node keeps re-broadcasting: total message
        volume is O(n * diameter), not O(n * rounds)."""
        n = 8
        net = Network(path_graph(n))
        _, run = elect_leader(net, rounds=3 * n)
        late = run.trace.rounds[-1]
        assert late.messages == 0


class TestBfsTree:
    def test_distances_on_grid(self):
        g = grid_graph(3, 4)
        net = Network(g)
        bfs = build_bfs_tree(net, 0)
        # vertex (r, c) = r*4+c is at L1 distance r+c from the corner
        for r in range(3):
            for c in range(4):
                assert bfs[r * 4 + c].distance == r + c

    def test_parents_form_tree(self):
        g = random_tree(20, seed=2)
        net = Network(g)
        bfs = build_bfs_tree(net, 5)
        assert bfs[5].parent is None and bfs[5].distance == 0
        for v in range(20):
            if v == 5:
                continue
            p = bfs[v].parent
            assert p is not None
            pv = net.vertex_of(p)
            assert g.has_edge(v, pv)
            assert bfs[pv].distance == bfs[v].distance - 1

    def test_unreachable_is_none(self):
        g = Graph(3, [(0, 1)])
        bfs = build_bfs_tree(Network(g), 0)
        assert bfs[2].distance is None
        assert bfs[2].parent is None

    def test_smallest_id_parent_preferred(self):
        g = star_graph(3)  # leaves all adjacent to centre 0
        # add a second feeder: 1-2 edge creates a parent choice for 2
        g.add_edge(1, 2)
        bfs = build_bfs_tree(Network(g), 0)
        assert bfs[2].parent == 0  # distance-1 via centre, not via 1


class TestAggregate:
    def test_sum(self):
        g = grid_graph(4, 4)
        net = Network(g)
        total = aggregate(net, 0, {v: v for v in range(16)}, lambda a, b: a + b)
        assert total == sum(range(16))

    def test_max(self):
        g = cycle_graph(11)
        net = Network(g)
        best = aggregate(net, 3, {v: (v * 7) % 11 for v in range(11)}, max)
        assert best == 10

    def test_count_on_tree(self):
        g = random_tree(25, seed=8)
        net = Network(g)
        count = aggregate(net, 0, {v: 1 for v in range(25)}, lambda a, b: a + b)
        assert count == 25

    def test_single_vertex(self):
        g = Graph(1)
        net = Network(g)
        assert aggregate(net, 0, {0: 42}, max) == 42

"""Fault-injection tests: soundness survives message loss, completeness
does not (and we can show exactly why, constructively)."""

import numpy as np
import pytest

from helpers import assert_is_cycle
from repro.congest import (
    DropFaults,
    FaultyScheduler,
    Network,
    TargetedFaults,
)
from repro.core import (
    DetectCkProgram,
    DetectionOutcome,
    MultiplexedCkProgram,
    phase2_rounds,
    protocol_rounds,
)
from repro.graphs import cycle_graph, erdos_renyi_gnp, figure1_graph, path_graph


def run_faulty_detect(g, edge, k, faults, network=None):
    net = network if network is not None else Network(g)
    edge_ids = net.edge_ids(*edge)
    sched = FaultyScheduler(net, faults)
    run = sched.run(
        lambda ctx: DetectCkProgram(ctx, k, edge_ids),
        num_rounds=phase2_rounds(k),
    )
    return net, run


class TestDropFaults:
    def test_bad_probability(self):
        with pytest.raises(ValueError):
            DropFaults(1.5)

    def test_p_zero_is_reliable(self):
        g = figure1_graph()
        faults = DropFaults(0.0)
        _, run = run_faulty_detect(g, (0, 1), 5, faults)
        assert any(o.rejects for o in run.outputs.values())
        assert faults.dropped == 0

    def test_p_one_drops_everything(self):
        g = figure1_graph()
        faults = DropFaults(1.0, seed=1)
        _, run = run_faulty_detect(g, (0, 1), 5, faults)
        assert not any(o.rejects for o in run.outputs.values())
        assert faults.delivered == 0

    def test_soundness_under_random_loss(self):
        """Whatever gets dropped, any rejection still certifies a genuine
        k-cycle — 1-sidedness is fault-tolerant."""
        rng = np.random.default_rng(3)
        for trial in range(12):
            g = erdos_renyi_gnp(10, 0.4, seed=trial)
            if g.m == 0:
                continue
            e = next(iter(g.edges()))
            faults = DropFaults(0.3, seed=trial)
            for k in (4, 5, 6):
                net, run = run_faulty_detect(g, e, k, faults)
                for v, out in run.outputs.items():
                    if isinstance(out, DetectionOutcome) and out.rejects:
                        assert_is_cycle(g, out.cycle, k)

    def test_multiplexed_soundness_under_loss(self):
        rng = np.random.default_rng(4)
        for trial in range(8):
            g = erdos_renyi_gnp(10, 0.35, seed=100 + trial)
            if g.m == 0:
                continue
            net = Network(g)
            sched = FaultyScheduler(net, DropFaults(0.25, seed=trial))
            run = sched.run(
                lambda ctx: MultiplexedCkProgram(ctx, 5, trial),
                num_rounds=protocol_rounds(5),
            )
            for v, out in run.outputs.items():
                if isinstance(out, DetectionOutcome) and out.rejects:
                    verts = [net.vertex_of(i) for i in out.cycle]
                    assert_is_cycle(g, verts, 5)

    def test_counters(self):
        g = cycle_graph(8)
        faults = DropFaults(0.5, seed=9)
        run_faulty_detect(g, (0, 1), 8, faults)
        assert faults.dropped > 0
        assert faults.delivered > 0

    def test_reset_between_runs(self):
        g = cycle_graph(6)
        faults = DropFaults(0.4, seed=2)
        net = Network(g)
        sched = FaultyScheduler(net, faults)
        r1 = sched.run(
            lambda ctx: DetectCkProgram(ctx, 6, net.edge_ids(0, 1)),
            num_rounds=phase2_rounds(6),
        )
        d1 = faults.dropped
        r2 = sched.run(
            lambda ctx: DetectCkProgram(ctx, 6, net.edge_ids(0, 1)),
            num_rounds=phase2_rounds(6),
        )
        # identical seed reset => identical drop pattern and outputs
        assert faults.dropped == d1
        assert {v: o.rejects for v, o in r1.outputs.items()} == {
            v: o.rejects for v, o in r2.outputs.items()
        }


class TestTargetedFaults:
    def test_completeness_needs_reliability(self):
        """Constructive: C_k has exactly one witness flow per direction;
        censoring the seed edge u->(its cycle neighbour) in round 1 hides
        the u-rooted sequence family... detection then fails even though
        the cycle exists — Lemma 2's guarantee genuinely needs reliable
        links."""
        k = 6
        g = cycle_graph(k)
        # Block u=0's round-1 seed to its non-probe neighbour (vertex 5)
        # and v=1's seed to vertex 2 — both witness flows die.
        faults = TargetedFaults({(1, 0, 5), (1, 1, 2)})
        _, run = run_faulty_detect(g, (0, 1), k, faults)
        assert not any(o.rejects for o in run.outputs.values())
        assert faults.dropped == 2

    def test_unrelated_censorship_is_harmless(self):
        k = 6
        g = cycle_graph(k)
        # Censor a link in the "wrong" direction (towards the probe edge):
        # the cycle witnesses flow the other way and survive.
        faults = TargetedFaults({(None, 5, 0), (None, 2, 1)})
        _, run = run_faulty_detect(g, (0, 1), k, faults)
        assert any(o.rejects for o in run.outputs.values())

    def test_always_blocked_link(self):
        g = path_graph(4)
        faults = TargetedFaults({(None, 0, 1)})
        net = Network(g)
        sched = FaultyScheduler(net, faults)
        run = sched.run(
            lambda ctx: DetectCkProgram(ctx, 4, net.edge_ids(0, 1)),
            num_rounds=phase2_rounds(4),
        )
        assert faults.dropped >= 1

"""Unit tests for the obs metric primitives, logger and telemetry bundle.

Exposition round-trips live in ``test_obs_exposition.py``; end-to-end
threading through engines/monitor/campaigns in
``test_obs_integration.py``.
"""

import io

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    LOG,
    NULL_TELEMETRY,
    MetricsRegistry,
    StructuredLogger,
    Telemetry,
    get_telemetry,
    read_events,
    resolve_telemetry,
    set_telemetry,
    summarize_events,
)
from repro.obs.metrics import DEFAULT_SIZE_BUCKETS


class TestCounter:
    def test_inc_and_totals(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_events_total", "Events.", ("kind",))
        c.inc(kind="a")
        c.inc(2, kind="a")
        c.inc(5, kind="b")
        assert c.value(kind="a") == 3
        assert c.value(kind="b") == 5
        assert c.total() == 8

    def test_unlabeled_child(self):
        c = MetricsRegistry().counter("repro_x_total")
        c.inc()
        assert c.value() == 1 and c.total() == 1

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("repro_x_total")
        with pytest.raises(ConfigurationError):
            c.inc(-1)

    def test_missing_label_rejected(self):
        c = MetricsRegistry().counter("repro_x_total", "", ("kind",))
        with pytest.raises(ConfigurationError):
            c.inc()


class TestGauge:
    def test_set_and_peak_total(self):
        g = MetricsRegistry().gauge("repro_depth", "", ("engine",))
        g.set(3, engine="reference")
        g.set(7, engine="fast")
        g.set(5, engine="fast")  # overwrite, not max
        assert g.value(engine="fast") == 5
        assert g.total() == 5  # total() is the max across children

    def test_set_max_keeps_peak(self):
        g = MetricsRegistry().gauge("repro_depth")
        g.set_max(4)
        g.set_max(2)
        assert g.value() == 4


class TestHistogramBucketEdges:
    """The le= boundary semantics the Prometheus format mandates."""

    def test_value_on_boundary_counts_in_that_bucket(self):
        h = MetricsRegistry().histogram("repro_h", buckets=(1, 2, 4))
        h.observe(2)  # le="2" is inclusive
        assert h.quantile(0.5) == 2.0

    def test_above_largest_finite_bound_goes_to_inf(self):
        h = MetricsRegistry().histogram("repro_h", buckets=(1, 2, 4))
        h.observe(5)
        # +Inf bucket has no finite boundary: report the observed max.
        assert h.quantile(0.99) == 5
        assert h.count() == 1

    def test_power_of_two_default_quantiles(self):
        h = MetricsRegistry().histogram("repro_h")
        assert h.buckets[: len(DEFAULT_SIZE_BUCKETS)] == DEFAULT_SIZE_BUCKETS
        for v in (1, 3, 9, 1000, 5000):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 5 and s["sum"] == 6013
        # cumulative counts first reach rank 2.5 at le=16
        assert s["p50"] == 16.0
        assert s["p99"] == 5000  # above 1024 -> observed max

    def test_quantile_clamped_to_observed_max(self):
        h = MetricsRegistry().histogram("repro_h", buckets=(10, 100))
        h.observe(3)
        assert h.quantile(0.5) == 3  # min(bound=10, max=3)

    def test_empty_child_quantile_is_zero(self):
        h = MetricsRegistry().histogram("repro_h")
        assert h.quantile(0.5) == 0.0
        assert h.summary() == {"count": 0, "sum": 0.0, "p50": 0.0, "p99": 0.0}

    def test_quantile_range_checked(self):
        h = MetricsRegistry().histogram("repro_h")
        with pytest.raises(ConfigurationError):
            h.quantile(1.5)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().histogram("repro_h", buckets=(4, 2))


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("repro_x_total") is reg.counter("repro_x_total")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total")
        with pytest.raises(ConfigurationError, match="already registered"):
            reg.gauge("repro_x_total")

    def test_label_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", "", ("a",))
        with pytest.raises(ConfigurationError, match="labels"):
            reg.counter("repro_x_total", "", ("b",))

    def test_invalid_name_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("1bad name")

    def test_summary_counters_summed_gauges_peaked_histograms_nested(self):
        reg = MetricsRegistry()
        reg.counter("repro_c_total", "", ("k",)).inc(2, k="a")
        reg.counter("repro_c_total", "", ("k",)).inc(3, k="b")
        reg.gauge("repro_g").set(7)
        reg.histogram("repro_h").observe(1)
        assert reg.summary() == {
            "repro_c_total": 5,
            "repro_g": 7,
            "repro_h": {"": {"count": 1, "sum": 1}},
        }

    def test_summary_wall_histograms_omit_sum(self):
        # *_seconds families are wall-derived: their counts are
        # protocol-determined but their sums are not, so summary()
        # keeps the count and drops the sum (campaign byte-identity).
        reg = MetricsRegistry()
        reg.histogram("repro_x_seconds", "", ("span",)).observe(
            0.25, span="a"
        )
        assert reg.summary()["repro_x_seconds"] == {"span=a": {"count": 1}}

    def test_summary_values_are_ints_when_integral(self):
        reg = MetricsRegistry()
        reg.counter("repro_c_total").inc(2)
        assert isinstance(reg.summary()["repro_c_total"], int)

    def test_counter_totals_excludes_gauges(self):
        reg = MetricsRegistry()
        reg.counter("repro_c_total").inc()
        reg.gauge("repro_g").set(9)
        assert reg.counter_totals() == {"repro_c_total": 1}

    def test_get_unknown_is_clean_error(self):
        with pytest.raises(ConfigurationError, match="no metric named"):
            MetricsRegistry().get("repro_nope")

    def test_clear(self):
        reg = MetricsRegistry()
        reg.counter("repro_c_total").inc()
        reg.clear()
        assert len(reg) == 0


class TestStructuredLogger:
    def _logger(self, **cfg):
        out, err = io.StringIO(), io.StringIO()
        log = StructuredLogger()
        log.configure(stream=out, err_stream=err, **cfg)
        return log, out, err

    def test_info_formats_fields_on_stdout(self):
        log, out, err = self._logger()
        log.info("graph built", n=5, m=7)
        assert out.getvalue() == "# graph built n=5 m=7\n"
        assert err.getvalue() == ""

    def test_debug_needs_verbose(self):
        log, out, _ = self._logger()
        log.debug("hidden")
        assert out.getvalue() == ""
        log.configure(verbose=True, stream=out)
        log.debug("shown")
        assert "# shown" in out.getvalue()

    def test_quiet_suppresses_info_not_errors(self):
        log, out, err = self._logger(quiet=True)
        log.info("diagnostic")
        log.warn("careful")
        log.error("broken", code=2)
        assert out.getvalue() == ""
        assert "warn: careful" in err.getvalue()
        assert "error: broken code=2" in err.getvalue()

    def test_module_singleton(self):
        assert isinstance(LOG, StructuredLogger)


class TestTelemetryBundle:
    def test_span_events_and_snapshot(self, tmp_path):
        path = tmp_path / "events.jsonl"
        tel = Telemetry.to_jsonl(path)
        with tel.span("outer", k=5):
            tel.counter("repro_demo_total", "Demo.").inc(3)
            with tel.span("inner"):
                pass
            tel.mark("checkpoint", note="mid")
        tel.finalize()
        events = read_events(path)
        kinds = [e["type"] for e in events]
        assert kinds == ["span", "mark", "span", "snapshot"]
        inner, outer = events[0], events[2]
        assert inner["name"] == "inner" and inner["depth"] == 1
        assert inner["parent"] == "outer"
        assert outer["name"] == "outer" and outer["attrs"] == {"k": 5}
        assert outer["deltas"] == {"repro_demo_total": 3}
        summary = summarize_events(events)
        assert summary["spans"]["outer"]["count"] == 1
        assert summary["marks"] == {"checkpoint": 1}
        assert summary["metrics"]["repro_demo_total"] == 3
        # span durations are wall-derived: counts survive, sums do not
        assert summary["metrics"]["repro_span_seconds"] == {
            "span=inner": {"count": 1},
            "span=outer": {"count": 1},
        }

    def test_finalize_writes_textfile(self, tmp_path):
        path = tmp_path / "events.jsonl"
        tel = Telemetry.to_jsonl(path)
        tel.counter("repro_demo_total", "Demo.").inc()
        tel.finalize(textfile=tmp_path / "out.prom")
        text = (tmp_path / "out.prom").read_text()
        assert "repro_demo_total 1" in text

    def test_null_surface_is_inert(self):
        assert not NULL_TELEMETRY.enabled
        NULL_TELEMETRY.counter("x").inc()
        NULL_TELEMETRY.gauge("y").set_max(4)
        NULL_TELEMETRY.histogram("z").observe(1)
        with NULL_TELEMETRY.span("s", k=1):
            NULL_TELEMETRY.mark("m")
        assert NULL_TELEMETRY.summary() == {}
        assert NULL_TELEMETRY.render() == ""
        NULL_TELEMETRY.finalize()  # must not raise

    def test_global_resolution_order(self):
        # explicit arg > process global > disabled default
        assert resolve_telemetry(None) is NULL_TELEMETRY
        tel = Telemetry()
        try:
            set_telemetry(tel)
            assert get_telemetry() is tel
            assert resolve_telemetry(None) is tel
            other = Telemetry()
            assert resolve_telemetry(other) is other
        finally:
            set_telemetry(None)
        assert resolve_telemetry(None) is NULL_TELEMETRY

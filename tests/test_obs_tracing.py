"""Trace context, span trees and the engine phase profiler.

Unit coverage for :mod:`repro.obs.tracing` (deterministic id source,
W3C traceparent parsing, span/mark trace propagation, ambient context),
:mod:`repro.obs.traceview` (causal invariant checking and rendering)
and :mod:`repro.congest.engine.profiler` (phase attribution, the
``repro.profile/v1`` schema, bit-identity with profiling on/off).
"""

import json

import pytest

from repro.congest.engine import (
    NULL_PROFILER,
    PhaseProfiler,
    available_engines,
    create_engine,
    validate_profile,
)
from repro.congest.network import Network
from repro.errors import ConfigurationError
from repro.graphs.generators import cycle_graph, erdos_renyi_gnp
from repro.obs import ListSink, Telemetry
from repro.obs.tracing import (
    TraceContext,
    TraceIdSource,
    activate_trace,
    current_trace,
    format_traceparent,
    parse_traceparent,
)
from repro.obs.traceview import (
    check_traces,
    group_traces,
    render_slowest,
    render_trace,
    slowest_requests,
)


class TestTraceIdSource:
    def test_deterministic_and_well_formed(self):
        a, b = TraceIdSource(7), TraceIdSource(7)
        assert [a.trace_id() for _ in range(5)] == [
            b.trace_id() for _ in range(5)
        ]
        assert [a.span_id() for _ in range(5)] == [
            b.span_id() for _ in range(5)
        ]
        tid, sid = TraceIdSource(0).trace_id(), TraceIdSource(0).span_id()
        assert len(tid) == 32 and int(tid, 16) != 0
        assert len(sid) == 16 and int(sid, 16) != 0

    def test_distinct_seeds_distinct_streams(self):
        assert TraceIdSource(1).trace_id() != TraceIdSource(2).trace_id()

    def test_independent_of_protocol_rng(self):
        import random

        random.seed(123)
        first = TraceIdSource(5).trace_id()
        random.seed(456)
        assert TraceIdSource(5).trace_id() == first


class TestTraceparent:
    def test_round_trip(self):
        ids = TraceIdSource(3)
        header = format_traceparent(ids.trace_id(), ids.span_id())
        context = parse_traceparent(header)
        assert context is not None
        assert context.traceparent() == header

    @pytest.mark.parametrize("header", [
        None,
        "",
        "garbage",
        "00-xyz-abc-01",
        "00-" + "0" * 32 + "-" + "1" * 16 + "-01",  # all-zero trace id
        "00-" + "1" * 32 + "-" + "0" * 16 + "-01",  # all-zero span id
        "ff-" + "1" * 32 + "-" + "2" * 16 + "-01",  # forbidden version
        "00-" + "A" * 32 + "-" + "2" * 16 + "-01",  # uppercase hex
        "00-" + "1" * 31 + "-" + "2" * 16 + "-01",  # short trace id
        "00-" + "1" * 32 + "-" + "2" * 16,          # missing flags
    ])
    def test_invalid_headers_never_raise(self, header):
        assert parse_traceparent(header) is None

    def test_whitespace_tolerated(self):
        header = "00-" + "a" * 32 + "-" + "b" * 16 + "-01"
        assert parse_traceparent(f"  {header}  ") is not None


class TestSpanTraceContext:
    def test_nested_spans_share_trace_and_chain_parents(self):
        sink = ListSink()
        tel = Telemetry(sink=sink, trace_seed=1)
        with tel.span("outer"):
            with tel.span("inner"):
                pass
        inner, outer = sink.events
        assert inner["trace_id"] == outer["trace_id"]
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None

    def test_root_span_joins_ambient_context(self):
        sink = ListSink()
        tel = Telemetry(sink=sink, trace_seed=1)
        context = TraceContext("ab" * 16, "cd" * 8)
        with activate_trace(context):
            with tel.span("root"):
                pass
        (event,) = sink.events
        assert event["trace_id"] == context.trace_id
        assert event["parent_id"] == context.span_id

    def test_ambient_context_restored_after_block(self):
        assert current_trace() is None
        with activate_trace(TraceContext("ab" * 16, "cd" * 8)):
            assert current_trace() is not None
        assert current_trace() is None

    def test_mark_inherits_span_then_ambient(self):
        sink = ListSink()
        tel = Telemetry(sink=sink, trace_seed=1)
        with tel.span("s"):
            tel.mark("inside")
        context = TraceContext("ab" * 16, "cd" * 8)
        with activate_trace(context):
            tel.mark("ambient")
        tel.mark("bare")
        inside = sink.events[0]
        span = sink.events[1]
        ambient, bare = sink.events[2], sink.events[3]
        assert inside["trace_id"] == span["trace_id"]
        assert inside["parent_id"] == span["span_id"]
        assert ambient["trace_id"] == context.trace_id
        assert "trace_id" not in bare

    def test_trace_seed_replays_identically(self):
        def ids_of(seed):
            sink = ListSink()
            tel = Telemetry(sink=sink, trace_seed=seed)
            with tel.span("a"):
                with tel.span("b"):
                    pass
            return [(e["trace_id"], e["span_id"]) for e in sink.events]

        assert ids_of(9) == ids_of(9)
        assert ids_of(9) != ids_of(10)


def _span(trace_id, span_id, parent_id, name="s"):
    return {
        "type": "span", "name": name, "elapsed_ms": 1.0,
        "trace_id": trace_id, "span_id": span_id, "parent_id": parent_id,
    }


def _request(trace_id, span_id, parent_id=None, **extra):
    event = {
        "type": "request", "endpoint": "verdict", "method": "GET",
        "path": "/v1/sessions/x/verdict", "status": 200,
        "elapsed_ms": 5.0, "trace_id": trace_id, "span_id": span_id,
        "parent_id": parent_id,
    }
    event.update(extra)
    return event


class TestTraceview:
    def test_clean_forest_passes(self):
        events = [
            _request("t1" * 16, "r1" + "0" * 14, parent_id="c1" + "0" * 14),
            _span("t1" * 16, "s1" + "0" * 14, "r1" + "0" * 14),
            _span("t1" * 16, "s2" + "0" * 14, "s1" + "0" * 14),
        ]
        assert check_traces(events) == []

    def test_duplicate_span_id_flagged(self):
        events = [
            _span("t1" * 16, "s1" + "0" * 14, None),
            _span("t2" * 16, "s1" + "0" * 14, None),
        ]
        assert any("duplicate span_id" in p for p in check_traces(events))

    def test_unresolvable_parent_flagged(self):
        events = [_span("t1" * 16, "s1" + "0" * 14, "99" + "0" * 14)]
        assert any(
            "unresolvable parent_id" in p for p in check_traces(events)
        )

    def test_orphan_span_does_not_chain_to_request(self):
        events = [
            _request("t1" * 16, "r1" + "0" * 14),
            _span("t1" * 16, "s1" + "0" * 14, None),  # root, not under r1
        ]
        assert any("does not chain" in p for p in check_traces(events))

    def test_two_wide_events_in_one_trace_flagged(self):
        events = [
            _request("t1" * 16, "r1" + "0" * 14),
            _request("t1" * 16, "r2" + "0" * 14),
        ]
        assert any("wide events" in p for p in check_traces(events))

    def test_slowest_requests_ranked(self):
        events = [
            _request("t1" * 16, "r1" + "0" * 14, elapsed_ms=2.0),
            _request("t2" * 16, "r2" + "0" * 14, elapsed_ms=9.0),
        ]
        ranked = slowest_requests(events, 1)
        assert len(ranked) == 1 and ranked[0]["elapsed_ms"] == 9.0

    def test_render_trace_tree(self):
        trace = "t1" * 16
        events = [
            _request(trace, "r1" + "0" * 14, session="x",
                     actions={"insert": 2}),
            _span(trace, "s1" + "0" * 14, "r1" + "0" * 14, name="apply"),
        ]
        text = render_trace(events, trace)
        assert "GET /v1/sessions/x/verdict -> 200" in text
        assert "session=x" in text and "actions=insert:2" in text
        assert "  - apply" in text.replace("    ", "  ")
        assert render_trace(events, "ff" * 16).endswith("no events")
        assert "GET" in render_slowest(events, 1)

    def test_group_traces_buckets(self):
        events = [
            _span("t1" * 16, "s1" + "0" * 14, None),
            _span("t2" * 16, "s2" + "0" * 14, None),
            {"type": "snapshot"},  # untraced events are ignored
        ]
        groups = group_traces(events)
        assert set(groups) == {"t1" * 16, "t2" * 16}


class TestPhaseProfiler:
    def test_phases_accumulate(self):
        profiler = PhaseProfiler()
        with profiler.phase("a"):
            pass
        with profiler.phase("a"):
            pass
        profiler.add("b", 0.5, calls=3)
        doc = profiler.report(engine="fast")
        assert doc["schema"] == "repro.profile/v1"
        assert doc["phases"]["a"]["calls"] == 2
        assert doc["phases"]["b"] == {"calls": 3, "seconds": 0.5}
        assert doc["total_seconds"] >= 0.5

    def test_clear(self):
        profiler = PhaseProfiler()
        profiler.add("a", 1.0)
        profiler.clear()
        assert profiler.report()["phases"] == {}

    def test_write_validates_and_persists(self, tmp_path):
        profiler = PhaseProfiler()
        profiler.add("fold", 0.25)
        path = tmp_path / "PROFILE.json"
        doc = profiler.write(path, engine="sharded:2")
        on_disk = json.loads(path.read_text())
        assert on_disk == doc
        assert validate_profile(on_disk) is on_disk

    def test_null_profiler_is_inert(self):
        assert NULL_PROFILER.enabled is False
        with NULL_PROFILER.phase("x"):
            pass
        NULL_PROFILER.add("x", 1.0)
        assert NULL_PROFILER.report(engine="fast") == {}

    @pytest.mark.parametrize("mutation", [
        {"schema": "bogus/v9"},
        {"engine": 7},
        {"total_seconds": -1},
        {"phases": []},
        {"phases": {"p": {"calls": 0, "seconds": 0}}},
        {"phases": {"p": {"calls": 1, "seconds": -0.1}}},
        {"phases": {"p": {"calls": 1, "seconds": 0, "extra": 1}}},
    ])
    def test_validate_rejects(self, mutation):
        doc = {
            "schema": "repro.profile/v1", "engine": "fast",
            "phases": {"p": {"calls": 1, "seconds": 0.1}},
            "total_seconds": 0.1,
        }
        doc.update(mutation)
        with pytest.raises(ConfigurationError):
            validate_profile(doc)

    def test_validate_rejects_non_dict(self):
        with pytest.raises(ConfigurationError):
            validate_profile([1, 2])


def _fingerprint(run):
    return sorted(
        (v, bool(getattr(out, "rejects", False)),
         getattr(out, "cycle", None))
        for v, out in run.outputs.items()
    )


class TestCliTraceAndProfile:
    def _write_events(self, path, events):
        path.write_text(
            "".join(json.dumps(e) + "\n" for e in events)
        )

    def test_obs_trace_check_ok(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "events.jsonl"
        trace = "t1" * 16
        self._write_events(path, [
            _request(trace, "r1" + "0" * 14),
            _span(trace, "s1" + "0" * 14, "r1" + "0" * 14),
        ])
        rc = main(["obs", "trace", "--events", str(path), "--check"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "1 traces, 1 requests" in out
        assert "trace check OK" in out

    def test_obs_trace_check_fails_on_violation(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "events.jsonl"
        self._write_events(path, [
            _span("t1" * 16, "s1" + "0" * 14, "77" + "0" * 14),
        ])
        with pytest.raises(SystemExit, match="trace check FAILED"):
            main(["obs", "trace", "--events", str(path), "--check"])
        assert "VIOLATION" in capsys.readouterr().out

    def test_obs_trace_renders_one_trace(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "events.jsonl"
        trace = "t1" * 16
        self._write_events(path, [
            _request(trace, "r1" + "0" * 14),
            _span(trace, "s1" + "0" * 14, "r1" + "0" * 14, name="apply"),
        ])
        rc = main(["obs", "trace", "--events", str(path),
                   "--trace-id", trace])
        out = capsys.readouterr().out
        assert rc == 0
        assert "apply" in out

    def test_obs_trace_missing_log_is_clean_error(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="no event log"):
            main(["obs", "trace", "--events", str(tmp_path / "nope.jsonl")])

    def test_obs_profile_generate_then_print(self, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "PROFILE.json"
        rc = main([
            "obs", "profile", "--engine", "reference", "--family", "cycle",
            "--params", "n=8", "--k", "4", "--reps", "2",
            "--out", str(out_path),
        ])
        generated = capsys.readouterr().out
        assert rc == 0
        assert "scheduler_run" in generated
        doc = validate_profile(json.loads(out_path.read_text()))
        assert doc["engine"] == "reference"
        rc = main(["obs", "profile", "--profile", str(out_path)])
        printed = capsys.readouterr().out
        assert rc == 0
        assert "scheduler_run" in printed


class TestEngineProfiling:
    def test_reference_engine_single_phase(self):
        net = Network(cycle_graph(6))
        profiler = PhaseProfiler()
        engine = create_engine("reference", net, profiler=profiler)
        engine.run_tester_repetition(5, 42)
        doc = profiler.report(engine="reference")
        assert set(doc["phases"]) == {"scheduler_run"}

    def test_fast_engine_phase_taxonomy_and_identity(self):
        if "fast" not in available_engines():
            pytest.skip("fast engine unavailable")
        net = Network(erdos_renyi_gnp(40, 0.12, seed=2))
        plain = create_engine("fast", net)
        profiler = PhaseProfiler()
        profiled = create_engine("fast", net, profiler=profiler)
        for rep_seed in (1, 2):
            base = plain.run_tester_repetition(5, rep_seed)
            run = profiled.run_tester_repetition(5, rep_seed)
            assert _fingerprint(run) == _fingerprint(base)
        doc = validate_profile(profiler.report(engine="fast"))
        assert {"rank_draws", "min_select", "priority_mux",
                "round_apply", "audit_fold", "decision"} <= set(doc["phases"])

    def test_fast_detect_phases(self):
        if "fast" not in available_engines():
            pytest.skip("fast engine unavailable")
        net = Network(cycle_graph(5))
        profiler = PhaseProfiler()
        engine = create_engine("fast", net, profiler=profiler)
        engine.run_detect(5, (0, 1))
        phases = set(profiler.report()["phases"])
        assert {"audit_fold", "priority_mux", "round_apply",
                "decision"} <= phases

    def test_sharded_engine_shard_and_fold_phases(self):
        if "sharded" not in available_engines():
            pytest.skip("sharded engine unavailable")
        net = Network(erdos_renyi_gnp(48, 0.1, seed=3))
        profiler = PhaseProfiler()
        engine = create_engine("sharded:2", net, profiler=profiler)
        try:
            engine.run_tester_repetition(5, 11)
        finally:
            if hasattr(engine, "close"):
                engine.close()
        phases = set(profiler.report(engine="sharded:2")["phases"])
        assert {"shard0_compute", "shard1_compute",
                "parent_fold", "halo_routing"} <= phases

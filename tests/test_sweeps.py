"""Tests for the sweep experiments (A5–A7)."""

from repro.analysis import run_boosting_curve, run_epsilon_sweep, run_k_sweep
from repro.core import repetitions_needed


class TestBoostingCurve:
    def test_rates_dominate_theory(self):
        res = run_boosting_curve(
            k=4, eps=0.2, n=40, rep_counts=(1, 4, 8), trials=10, seed=1
        )
        for row in res.rows:
            # Empirical rejection must be at least the theoretical lower
            # bound (up to binomial noise - use the Wilson upper bound).
            assert row["hi"] >= row["bound"]

    def test_monotone_bound(self):
        res = run_boosting_curve(
            k=4, eps=0.2, n=40, rep_counts=(1, 2, 4), trials=5, seed=2
        )
        bounds = [r["bound"] for r in res.rows]
        assert bounds == sorted(bounds)

    def test_renders(self):
        # eps must stay below the packing ceiling of the generator
        # (~c/m with bridge+padding overhead, i.e. a bit under 1/(k+1)).
        res = run_boosting_curve(
            k=4, eps=0.15, n=30, rep_counts=(1,), trials=3, seed=3
        )
        assert "A5" in res.render()


class TestEpsilonSweep:
    def test_inverse_scaling(self):
        res = run_epsilon_sweep(k=5, epsilons=(0.4, 0.2, 0.1))
        rows = res.rows
        # rounds * eps is (nearly) constant: within ceil slack.
        products = [r["total"] * r["eps"] for r in rows]
        assert max(products) - min(products) < 3 * 1.0  # 3 rounds of slack

    def test_matches_formula(self):
        res = run_epsilon_sweep(k=3, epsilons=(0.1,))
        assert res.rows[0]["reps"] == repetitions_needed(0.1)


class TestKSweep:
    def test_rounds_and_ceilings(self):
        res = run_k_sweep(ks=(3, 5, 7), width=4)
        for row in res.rows:
            assert row["rounds"] == 1 + row["k"] // 2
            assert row["measured"] <= row["ceiling"]

    def test_ceiling_monotone(self):
        res = run_k_sweep(ks=(4, 6, 8), width=3)
        ceilings = [r["ceiling"] for r in res.rows]
        assert ceilings == sorted(ceilings)

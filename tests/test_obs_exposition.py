"""Prometheus text exposition: rendering, strict parsing, round-trips.

The format contract the rest of the repo relies on: whatever
``render_textfile`` produces, ``parse_textfile`` re-reads losslessly and
``render_parsed`` reproduces byte for byte — so a committed ``.prom``
artifact can be validated (and diffed) mechanically.
"""

import math

import pytest

from repro.obs import (
    ExpositionError,
    MetricsRegistry,
    parse_textfile,
    render_textfile,
)
from repro.obs.exposition import (
    registry_equals_parsed,
    render_parsed,
)


def populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    c = reg.counter("repro_msgs_total", "Messages sent.", ("engine",))
    c.inc(42, engine="reference")
    c.inc(7, engine="fast")
    reg.gauge("repro_depth", "Recursion depth.").set(3)
    h = reg.histogram("repro_sizes", "Ball sizes.", ("kind",), buckets=(1, 2, 4))
    for v in (1, 2, 3, 9):
        h.observe(v, kind="ball")
    weird = reg.counter("repro_weird_total", 'Help with \\ and\nnewline.', ("tag",))
    weird.inc(1, tag='quote " backslash \\ newline \n done')
    return reg


class TestRendering:
    def test_help_and_type_lines(self):
        text = render_textfile(populated_registry())
        assert "# HELP repro_msgs_total Messages sent.\n" in text
        assert "# TYPE repro_msgs_total counter\n" in text
        assert "# TYPE repro_sizes histogram\n" in text

    def test_integral_values_render_as_ints(self):
        text = render_textfile(populated_registry())
        assert 'repro_msgs_total{engine="reference"} 42\n' in text
        assert "42.0" not in text

    def test_histogram_samples_cumulative_with_inf(self):
        text = render_textfile(populated_registry())
        assert 'repro_sizes_bucket{kind="ball",le="1"} 1\n' in text
        assert 'repro_sizes_bucket{kind="ball",le="2"} 2\n' in text
        assert 'repro_sizes_bucket{kind="ball",le="4"} 3\n' in text
        assert 'repro_sizes_bucket{kind="ball",le="+Inf"} 4\n' in text
        assert 'repro_sizes_sum{kind="ball"} 15\n' in text
        assert 'repro_sizes_count{kind="ball"} 4\n' in text


class TestRoundTrip:
    def test_render_parse_render_is_fixed_point(self):
        text = render_textfile(populated_registry())
        assert render_parsed(parse_textfile(text)) == text

    def test_registry_equals_parsed(self):
        reg = populated_registry()
        assert registry_equals_parsed(reg, parse_textfile(render_textfile(reg)))

    def test_label_escaping_survives(self):
        families = parse_textfile(render_textfile(populated_registry()))
        [(labels, value)] = families["repro_weird_total"].series()
        assert dict(labels)["tag"] == 'quote " backslash \\ newline \n done'
        assert value == 1

    def test_parsed_series_accessors(self):
        families = parse_textfile(render_textfile(populated_registry()))
        counter = families["repro_msgs_total"]
        assert counter.kind == "counter"
        assert counter.help == "Messages sent."
        values = {dict(lbl)["engine"]: v for lbl, v in counter.series()}
        assert values == {"reference": 42, "fast": 7}
        hist = families["repro_sizes"]
        buckets = hist.series("_bucket")
        assert [v for _, v in buckets] == [1, 2, 3, 4]
        assert dict(buckets[-1][0])["le"] == "+Inf"
        assert hist.series("_count") == [((("kind", "ball"),), 4)]
        assert hist.series("_nope") == []

    def test_inf_value_round_trips(self):
        reg = MetricsRegistry()
        reg.gauge("repro_g").set(math.inf)
        text = render_textfile(reg)
        assert "repro_g +Inf\n" in text
        assert render_parsed(parse_textfile(text)) == text


class TestStrictParsing:
    def test_unparseable_line_rejected(self):
        with pytest.raises(ExpositionError):
            parse_textfile("this is not a metric line\n")

    def test_bad_value_rejected(self):
        with pytest.raises(ExpositionError):
            parse_textfile("repro_x_total twelve\n")

    def test_sample_without_family_rejected(self):
        # A bare sample that matches no TYPE-declared family is an error
        # in strict mode, not silently collected.
        with pytest.raises(ExpositionError):
            parse_textfile(
                "# TYPE repro_a counter\nrepro_a 1\nrepro_b 2\n"
            )

    def test_histogram_must_be_cumulative(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            'repro_h_bucket{le="2"} 3\n'  # decreasing: invalid
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_sum 9\n"
            "repro_h_count 5\n"
        )
        with pytest.raises(ExpositionError, match="cumulative"):
            parse_textfile(text)

    def test_histogram_requires_inf_bucket(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            "repro_h_sum 9\n"
            "repro_h_count 5\n"
        )
        with pytest.raises(ExpositionError, match="Inf"):
            parse_textfile(text)

    def test_histogram_count_must_agree_with_inf_bucket(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 4\n'
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_sum 9\n"
            "repro_h_count 6\n"
        )
        with pytest.raises(ExpositionError):
            parse_textfile(text)

    def test_valid_handwritten_histogram_parses(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 4\n'
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_sum 9.5\n"
            "repro_h_count 5\n"
        )
        families = parse_textfile(text)
        assert families["repro_h"].kind == "histogram"

"""Shared non-fixture helpers for the test suite."""

from __future__ import annotations

import numpy as np

from repro.graphs import Graph, erdos_renyi_gnp


def random_graphs(count: int, n_lo: int = 5, n_hi: int = 12, seed: int = 0):
    """Deterministic stream of small random graphs for differential tests."""
    rng = np.random.default_rng(seed)
    out = []
    for i in range(count):
        n = int(rng.integers(n_lo, n_hi + 1))
        p = float(rng.uniform(0.15, 0.55))
        out.append(erdos_renyi_gnp(n, p, seed=int(rng.integers(2**31))))
    return out


def assert_is_cycle(g: Graph, vertices, k: int) -> None:
    """Assert that ``vertices`` is a simple k-cycle in g (closing edge
    implicit)."""
    assert len(vertices) == k, f"cycle has {len(vertices)} != {k} vertices"
    assert len(set(vertices)) == k, f"cycle revisits a vertex: {vertices}"
    for i in range(k):
        u, v = vertices[i], vertices[(i + 1) % k]
        assert g.has_edge(u, v), f"missing edge ({u},{v}) in claimed cycle {vertices}"

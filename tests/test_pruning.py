"""Tests for the Algorithm-1 pruning rule.

The central property: :class:`HittingSetPruner` is *behaviourally
identical* to the literal :class:`ExplicitPruner` (Instructions 15–23), so
the paper's Lemma 2/3 analysis transfers to the fast implementation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pruning import ExplicitPruner, HittingSetPruner, lemma3_bound
from repro.core.sequences import (
    collect_ids,
    drop_containing,
    fake_ids,
    is_valid_sequence,
    sort_sequences,
)
from repro.errors import ConfigurationError


def make_sequences(draw_ids, t):
    """Build distinct-ID sequences of length t-1 from a flat pool."""
    seqs = []
    pool = list(draw_ids)
    width = t - 1
    for i in range(0, len(pool) - width + 1, width):
        chunk = tuple(pool[i: i + width])
        if len(set(chunk)) == width:
            seqs.append(chunk)
    return seqs


class TestSequencesHelpers:
    def test_sort_deterministic(self):
        assert sort_sequences([(3, 1), (1, 2)]) == [(1, 2), (3, 1)]

    def test_collect_ids(self):
        assert collect_ids([(1, 2), (2, 3)]) == {1, 2, 3}

    def test_drop_containing(self):
        assert drop_containing([(1, 2), (3, 4)], 2) == [(3, 4)]

    def test_fake_ids(self):
        assert fake_ids(7, 3) == (-1, -2, -3, -4)
        assert fake_ids(5, 2) == (-1, -2, -3)

    def test_is_valid_sequence(self):
        assert is_valid_sequence((1, 2, 3))
        assert not is_valid_sequence((1, 1))
        assert not is_valid_sequence(())
        assert not is_valid_sequence([1, 2])
        assert not is_valid_sequence((-1, 2))


class TestValidation:
    def test_bad_k(self):
        with pytest.raises(ConfigurationError):
            HittingSetPruner().select([], 2, 2)

    def test_bad_round(self):
        with pytest.raises(ConfigurationError):
            HittingSetPruner().select([], 7, 1)
        with pytest.raises(ConfigurationError):
            HittingSetPruner().select([], 7, 4)  # k//2 = 3

    def test_wrong_length(self):
        with pytest.raises(ConfigurationError):
            HittingSetPruner().select([(1, 2)], 8, 2)


class TestBehaviour:
    def test_empty_input(self):
        assert HittingSetPruner().select([], 7, 2) == []
        assert ExplicitPruner().select([], 7, 2) == []

    def test_first_sequence_always_kept(self):
        """The fake-ID witness guarantees the first processed sequence
        survives (paper §3.3)."""
        for k in (5, 6, 7, 8, 9):
            for t in range(2, k // 2 + 1):
                seq = tuple(range(100, 100 + t - 1))
                assert HittingSetPruner().select([seq], k, t) == [seq]

    def test_duplicate_id_sets_keep_one(self):
        """P_0 of Lemma 3: per ID-set, at most one ordering survives."""
        seqs = [(1, 2, 3), (3, 2, 1), (2, 1, 3)]
        kept = HittingSetPruner().select(seqs, 8, 4)
        assert len(kept) == 1

    def test_disjoint_singletons_cap(self):
        """Sequences sharing a prefix {u}: exactly k-t+1 survive."""
        k, t = 7, 3
        seqs = [(100, 200 + i) for i in range(10)]
        kept = HittingSetPruner().select(seqs, k, t)
        assert len(kept) == k - t + 1  # 5

    def test_all_disjoint_sequences_cap(self):
        """Pairwise-disjoint length-1 sequences: k-t+1 survive."""
        k, t = 9, 2
        seqs = [(i,) for i in range(20)]
        kept = HittingSetPruner().select(seqs, k, t)
        assert len(kept) == k - t + 1  # 8

    def test_lemma3_bound_formula(self):
        assert lemma3_bound(9, 1) == 1
        assert lemma3_bound(9, 2) == 8
        assert lemma3_bound(9, 3) == 49
        assert lemma3_bound(9, 4) == 216
        with pytest.raises(ConfigurationError):
            lemma3_bound(9, 5)

    def test_explicit_guard(self):
        big = [(i, i + 100) for i in range(0, 80, 2)]
        with pytest.raises(ConfigurationError):
            ExplicitPruner(max_subsets=10).select(big, 10, 3)


class TestEquivalence:
    """HittingSetPruner ≡ ExplicitPruner, element for element."""

    def exhaustive_case(self, seqs, k, t):
        fast = HittingSetPruner().select(seqs, k, t)
        slow = ExplicitPruner().select(seqs, k, t)
        assert fast == slow

    def test_handpicked_cases(self):
        self.exhaustive_case([(1,), (2,), (3,)], 5, 2)
        self.exhaustive_case([(1, 2), (1, 3), (2, 3), (4, 5)], 7, 3)
        self.exhaustive_case([(1, 2), (2, 1)], 6, 3)
        self.exhaustive_case([(i,) for i in range(9)], 6, 2)

    @settings(max_examples=150, deadline=None)
    @given(
        data=st.data(),
        k=st.integers(5, 9),
    )
    def test_random_equivalence(self, data, k):
        t = data.draw(st.integers(2, k // 2))
        n_seqs = data.draw(st.integers(0, 8))
        seqs = []
        for _ in range(n_seqs):
            seq = data.draw(
                st.lists(
                    st.integers(0, 12),
                    min_size=t - 1,
                    max_size=t - 1,
                    unique=True,
                ).map(tuple)
            )
            seqs.append(seq)
        fast = HittingSetPruner().select(seqs, k, t)
        slow = ExplicitPruner().select(seqs, k, t)
        assert fast == slow

    @settings(max_examples=150, deadline=None)
    @given(data=st.data(), k=st.integers(5, 10))
    def test_lemma3_bound_holds(self, data, k):
        """Property: output size <= (k-t+1)^(t-1) for any input."""
        t = data.draw(st.integers(2, k // 2))
        n_seqs = data.draw(st.integers(0, 14))
        seqs = []
        for _ in range(n_seqs):
            seq = data.draw(
                st.lists(
                    st.integers(0, 20),
                    min_size=t - 1,
                    max_size=t - 1,
                    unique=True,
                ).map(tuple)
            )
            seqs.append(seq)
        kept = HittingSetPruner().select(seqs, k, t)
        assert len(kept) <= lemma3_bound(k, t)

    @settings(max_examples=100, deadline=None)
    @given(data=st.data(), k=st.integers(5, 9))
    def test_retention_invariant(self, data, k):
        """Lemma 2's pruning invariant: for every *discarded* L and every
        (k-t)-set X of real IDs disjoint from L, some *kept* K is also
        disjoint from X.  (This is exactly what makes the algorithm keep a
        completable witness.)"""
        from itertools import combinations

        t = data.draw(st.integers(2, k // 2))
        n_seqs = data.draw(st.integers(1, 7))
        seqs = []
        for _ in range(n_seqs):
            seq = data.draw(
                st.lists(
                    st.integers(0, 9),
                    min_size=t - 1,
                    max_size=t - 1,
                    unique=True,
                ).map(tuple)
            )
            seqs.append(seq)
        ordered = sort_sequences(seqs)
        kept = HittingSetPruner().select(seqs, k, t)
        kept_sets = [frozenset(s) for s in kept]
        discarded = [s for s in ordered if s not in kept]
        # X drawn from the ids present plus a few extras (completion nodes
        # unseen by the pruner are exactly the interesting case).
        universe = sorted(collect_ids(ordered) | {90, 91, 92, 93, 94, 95, 96})
        q = k - t
        for L in discarded:
            Lset = set(L)
            # Sample a few disjoint X's rather than all (cost control).
            candidates = [x for x in universe if x not in Lset]
            for combo in list(combinations(candidates[: q + 3], q))[:12]:
                X = set(combo)
                assert any(not (K & X) for K in kept_sets), (
                    f"discarded {L} had witness {X} but no kept sequence "
                    f"is disjoint from it; kept={kept_sets}"
                )

"""Tests for graph properties, edge-list IO, and trace rendering."""

import pytest

from repro.congest import render_comparison, render_trace
from repro.core import detect_cycle_through_edge, phase2_rounds
from repro.errors import GraphError
from repro.graphs import (
    Graph,
    bfs_distances,
    bipartition,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    degree_histogram,
    density,
    diameter,
    dumps,
    eccentricity,
    grid_graph,
    is_bipartite,
    is_tree,
    loads,
    path_graph,
    random_tree,
    read_edge_list,
    star_graph,
    write_edge_list,
)


class TestProperties:
    def test_bfs_distances(self):
        g = path_graph(5)
        assert bfs_distances(g, 0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_eccentricity(self):
        g = path_graph(5)
        assert eccentricity(g, 0) == 4
        assert eccentricity(g, 2) == 2

    def test_eccentricity_disconnected(self):
        assert eccentricity(Graph(3, [(0, 1)]), 0) is None

    def test_diameter_known_values(self):
        assert diameter(path_graph(6)) == 5
        assert diameter(cycle_graph(8)) == 4
        assert diameter(complete_graph(5)) == 1
        assert diameter(grid_graph(3, 4)) == 5
        assert diameter(Graph(1)) == 0
        assert diameter(Graph(0)) is None
        assert diameter(Graph(4, [(0, 1)])) is None

    def test_bipartite_families(self):
        assert is_bipartite(path_graph(7))
        assert is_bipartite(grid_graph(3, 3))
        assert is_bipartite(cycle_graph(6))
        assert not is_bipartite(cycle_graph(5))
        assert not is_bipartite(complete_graph(3))

    def test_bipartition_is_proper(self):
        g = complete_bipartite_graph(3, 4)
        side0, side1 = bipartition(g)
        assert sorted(side0 + side1) == list(range(7))
        for u, v in g.edges():
            assert (u in side0) != (v in side0)

    def test_degree_histogram(self):
        assert degree_histogram(star_graph(4)) == {4: 1, 1: 4}

    def test_density(self):
        assert density(complete_graph(6)) == 1.0
        assert density(Graph(5)) == 0.0
        assert density(Graph(1)) == 0.0

    def test_is_tree(self):
        assert is_tree(random_tree(15, seed=2))
        assert not is_tree(cycle_graph(4))
        assert not is_tree(Graph(3))  # disconnected forest


class TestEdgeListIO:
    def test_roundtrip_string(self):
        g = cycle_graph(7)
        assert loads(dumps(g)) == g

    def test_roundtrip_file(self, tmp_path):
        g = grid_graph(3, 3)
        path = tmp_path / "grid.edges"
        write_edge_list(g, path, comment="3x3 grid\nsecond line")
        h = read_edge_list(path)
        assert h == g
        text = path.read_text()
        assert text.startswith("# 3x3 grid\n# second line\n")

    def test_isolated_vertices_survive(self):
        g = Graph(5, [(0, 1)])
        assert loads(dumps(g)).n == 5

    def test_rejects_garbage(self):
        with pytest.raises(GraphError):
            loads("")
        with pytest.raises(GraphError):
            loads("3\n")
        with pytest.raises(GraphError):
            loads("3 1\n0 x\n")
        with pytest.raises(GraphError):
            loads("3 2\n0 1\n")  # header/edge-count mismatch

    def test_blank_lines_tolerated(self):
        g = loads("# c\n\n3 1\n\n0 2\n")
        assert g.has_edge(0, 2)


class TestTimeline:
    def test_render_trace_shape(self):
        g = cycle_graph(8)
        det = detect_cycle_through_edge(g, (0, 1), 8)
        out = render_trace(det.run.trace, title="C8 detect")
        lines = out.split("\n")
        assert lines[0] == "C8 detect"
        # header + rule + one line per round + total line
        assert len(lines) == 3 + phase2_rounds(8) + 1
        assert "total:" in lines[-1]

    def test_render_comparison(self):
        g = cycle_graph(6)
        a = detect_cycle_through_edge(g, (0, 1), 6).run.trace
        b = detect_cycle_through_edge(g, (1, 2), 6).run.trace
        out = render_comparison([a, b], labels=["edge01", "edge12"])
        assert "edge01" in out and "edge12" in out

    def test_render_comparison_label_mismatch(self):
        with pytest.raises(ValueError):
            render_comparison([], labels=["x"])

"""Tests for the §4 obstruction module (chorded cycles)."""

import pytest

from repro.errors import ConfigurationError
from repro.extensions import (
    build_obstruction_instance,
    cycle_has_chord,
    has_chorded_cycle_through_edge,
    oblivious_chorded_detect,
)
from repro.graphs import (
    chorded_cycle_graph,
    complete_graph,
    cycle_graph,
    has_cycle_through_edge,
)


class TestChordOracle:
    def test_plain_cycle_has_no_chord(self):
        g = cycle_graph(6)
        assert not cycle_has_chord(g, tuple(range(6)))

    def test_chorded_cycle_detected(self):
        g = chorded_cycle_graph(6, chord=(0, 2))
        assert cycle_has_chord(g, tuple(range(6)))

    def test_complete_graph_everything_chorded(self):
        g = complete_graph(6)
        assert has_chorded_cycle_through_edge(g, (0, 1), 5)

    def test_chordless_instance(self):
        g = cycle_graph(7)
        assert not has_chorded_cycle_through_edge(g, (0, 1), 7)

    def test_needs_k4(self):
        with pytest.raises(ConfigurationError):
            has_chorded_cycle_through_edge(cycle_graph(4), (0, 1), 3)


class TestObliviousDetector:
    def test_certifies_when_chord_is_local(self):
        """On K6 every witnessed cycle has chords at the detector."""
        g = complete_graph(6)
        res = oblivious_chorded_detect(g, (0, 1), 5)
        assert res.cycle_detected
        assert res.chord_certified

    def test_no_cycle_no_detection(self):
        g = cycle_graph(9)
        res = oblivious_chorded_detect(g, (0, 1), 5)
        assert not res.cycle_detected
        assert not res.chord_certified

    def test_chordless_cycle_not_certified(self):
        g = cycle_graph(6)
        res = oblivious_chorded_detect(g, (0, 1), 6)
        assert res.cycle_detected
        assert not res.chord_certified


class TestSection4Obstruction:
    """The paper's concluding obstruction, reproduced constructively."""

    @pytest.mark.parametrize("k", [6, 7, 8, 9])
    def test_obstruction_realised(self, k):
        g, e = build_obstruction_instance(k)
        # A chorded k-cycle through e genuinely exists...
        assert has_chorded_cycle_through_edge(g, e, k)
        # ...and a chordless one too (the survivors).
        assert has_cycle_through_edge(g, e, k)
        res = oblivious_chorded_detect(g, e, k)
        # Algorithm 1 still detects *a* cycle (Lemma 2 is intact)...
        assert res.cycle_detected
        # ...but the pruning kept only chordless witnesses: the oblivious
        # extension cannot certify the chord. This is §4's point.
        assert not res.chord_certified
        # And indeed the surviving evidence is chordless:
        assert not cycle_has_chord(g, res.evidence)

    def test_construction_shape(self):
        k = 7
        g, e = build_obstruction_instance(k)
        assert e == (0, 1)
        assert g.has_edge(*e)
        # k candidates + u + v + relay + (k-4) tail vertices
        assert g.n == 2 + k + 1 + (k - 4)

    def test_needs_k6(self):
        with pytest.raises(ConfigurationError):
            build_obstruction_instance(5)

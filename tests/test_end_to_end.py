"""End-to-end pipeline tests stitching every layer together."""

import pytest

from repro import detect_cycle_through_edge, test_ck_freeness
from repro._types import canonical_edge
from repro.congest import Network, RandomPermutationIds
from repro.core import verify_cycle_evidence
from repro.extensions import BatchedCkTester, estimate_girth, scan_cycle_lengths
from repro.graphs import (
    dumps,
    farness_bounds,
    girth,
    loads,
    planted_epsilon_far_graph,
)


class TestCanonicalEdge:
    def test_orders(self):
        assert canonical_edge(5, 2) == (2, 5)
        assert canonical_edge(2, 5) == (2, 5)

    def test_rejects_loop(self):
        with pytest.raises(ValueError):
            canonical_edge(3, 3)


class TestFullPipeline:
    """generate -> serialize -> reload -> certify -> test -> verify."""

    def test_pipeline_k5(self):
        k, eps = 5, 0.1
        g, certified = planted_epsilon_far_graph(90, k, eps, seed=21)

        # serialize / reload round trip
        g2 = loads(dumps(g, comment="pipeline instance"))
        assert g2 == g

        # certification agrees with the farness machinery
        lo, _ = farness_bounds(g2, k)
        assert lo >= eps

        # distributed verdict with adversarial IDs
        net = Network(g2, RandomPermutationIds(seed=5))
        result = test_ck_freeness(g2, k, eps, seed=6, network=net)
        assert result.rejected
        assert verify_cycle_evidence(g2, result.evidence, k, network=net)

        # the batched variant agrees in 3 rounds
        batched = BatchedCkTester(k, eps).run(g2, seed=7, network=net)
        assert batched.rejected
        assert batched.rounds == 1 + k // 2
        assert verify_cycle_evidence(g2, batched.evidence, k, network=net)

    def test_pipeline_girth_consistency(self):
        g, _ = planted_epsilon_far_graph(60, 4, 0.1, seed=33)
        est = estimate_girth(g, k_max=6, seed=1, repetitions_per_k=6)
        true_girth = girth(g)
        assert est.girth_upper_bound is not None
        assert est.girth_upper_bound >= true_girth
        # planted C4 instances have girth <= 4; the probe should see it
        assert est.girth_upper_bound <= 4

    def test_pipeline_multi_k_consistency(self):
        g, _ = planted_epsilon_far_graph(60, 5, 0.1, seed=44)
        res = scan_cycle_lengths(g, [4, 5], seed=2, repetitions=6)
        assert res.detected[5]
        assert verify_cycle_evidence(g, res.evidence[5], 5)

    def test_per_edge_and_global_agree(self):
        """If no edge carries a k-cycle, the tester must always accept."""
        from repro.graphs import has_cycle_through_edge, high_girth_graph

        g = high_girth_graph(40, girth_greater_than=6, seed=9)
        k = 5
        assert not any(
            has_cycle_through_edge(g, e, k) for e in g.edges()
        )
        for seed in range(3):
            assert test_ck_freeness(g, k, 0.2, seed=seed, repetitions=6).accepted

    def test_detect_is_idempotent_across_networks(self):
        g, _ = planted_epsilon_far_graph(50, 6, 0.1, seed=55)
        e = next(iter(g.edges()))
        verdicts = set()
        for seed in range(4):
            net = Network(g, RandomPermutationIds(seed=seed))
            verdicts.add(detect_cycle_through_edge(g, e, 6, network=net).detected)
        assert len(verdicts) == 1  # ID assignment cannot change the verdict

"""Smoke tests: every shipped example must run to completion.

Each example's ``main()`` is imported and executed in-process (stdout
captured by pytest).  The examples contain their own assertions, so a
pass here means the demonstrated claims actually held during the run.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

EXAMPLES = [
    "quickstart",
    "deadlock_detection",
    "motif_scan",
    "congest_audit",
    "figure1_walkthrough",
    "girth_probe",
    "campaign_demo",
    "dynamic_demo",
]


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} produced no output"


def test_quickstart_demonstrates_both_verdicts(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "REJECT" in out
    assert "ACCEPT" in out


def test_figure1_walkthrough_narrates_rounds(capsys):
    load_example("figure1_walkthrough").main()
    out = capsys.readouterr().out
    assert "z: REJECT" in out
    assert "round 1" in out and "round 2" in out

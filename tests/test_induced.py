"""Tests for the induced-cycle obstruction (§4, second remark)."""

import pytest

from repro.errors import ConfigurationError
from repro.extensions import (
    build_induced_obstruction_instance,
    cycle_has_chord,
    has_induced_cycle_through_edge,
    oracle_assisted_induced_detect,
    witnessed_cycles,
)
from repro.graphs import chorded_cycle_graph, complete_graph, cycle_graph


class TestInducedOracle:
    def test_plain_cycle_is_induced(self):
        g = cycle_graph(6)
        assert has_induced_cycle_through_edge(g, (0, 1), 6)

    def test_chorded_cycle_is_not(self):
        g = chorded_cycle_graph(5, chord=(0, 2))
        # The C5 itself has a chord; but the chord also creates shorter
        # cycles: C4 (0,2,3,4) induced? 0-2 edge, 2-3, 3-4, 4-0; chords of
        # that 4-cycle: 0-3? no. 2-4? no. So the C4 through (3, 4) is
        # induced while the C5 is not.
        assert not has_induced_cycle_through_edge(g, (0, 1), 5)
        assert has_induced_cycle_through_edge(g, (3, 4), 4)

    def test_complete_graph_has_none_above_3(self):
        g = complete_graph(6)
        for k in (4, 5, 6):
            assert not has_induced_cycle_through_edge(g, (0, 1), k)

    def test_needs_k4(self):
        with pytest.raises(ConfigurationError):
            has_induced_cycle_through_edge(cycle_graph(5), (0, 1), 3)


class TestWitnessedCycles:
    def test_collects_all_rejectors(self):
        g = cycle_graph(6)
        cycles = witnessed_cycles(g, (0, 1), 6)
        assert cycles
        for cyc in cycles:
            assert len(set(cyc)) == 6

    def test_empty_when_no_cycle(self):
        assert witnessed_cycles(cycle_graph(8), (0, 1), 5) == []


class TestSection4InducedObstruction:
    @pytest.mark.parametrize("k", [6, 7, 8, 9])
    def test_obstruction_realised(self, k):
        g, e = build_induced_obstruction_instance(k)
        # An induced k-cycle through e exists...
        assert has_induced_cycle_through_edge(g, e, k)
        # ...Algorithm 1 detects cycles (its own guarantee is intact)...
        cycles = witnessed_cycles(g, e, k)
        assert cycles
        # ...but every surviving witness is chorded: even an
        # oracle-assisted induced detector must fail.
        for cyc in cycles:
            assert cycle_has_chord(g, cyc)
        certified, witness = oracle_assisted_induced_detect(g, e, k)
        assert not certified and witness is None

    def test_oracle_assisted_succeeds_on_easy_instances(self):
        """Control: on a pure cycle the witness is induced and certified."""
        g = cycle_graph(7)
        certified, witness = oracle_assisted_induced_detect(g, (0, 1), 7)
        assert certified
        assert witness is not None

    def test_needs_k6(self):
        with pytest.raises(ConfigurationError):
            build_induced_obstruction_instance(5)
